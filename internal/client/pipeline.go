package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/minoskv/minos/internal/apierr"
	"github.com/minoskv/minos/internal/kv"
	"github.com/minoskv/minos/internal/mem"
	"github.com/minoskv/minos/internal/nic"
	"github.com/minoskv/minos/internal/wire"
)

// Pipeline is an open-loop request engine: many requests in flight at
// once, completions matched to callers by request id regardless of arrival
// order. It is the client-side analogue of the server's run-to-completion
// cores — one receiver goroutine drains the transport in batches while any
// number of caller goroutines submit.
//
// The in-flight window is per RX queue, mirroring a NIC's per-queue
// descriptor ring: a submitter whose target queue has Window requests
// outstanding blocks until one completes, so a slow queue throttles only
// the traffic steered at it. Requests carry a per-request deadline; an
// expired request is retransmitted up to Retries times and then failed
// with ErrTimeout, with both outcomes counted in Stats.
//
// Every blocking operation takes a context. A context that expires before
// the per-request deadline abandons the request: the pending entry is
// removed, the window slot is released immediately (no leaked in-flight
// slot), and the caller gets the context's error. Whichever of the
// context deadline and the pipeline deadline fires first decides the
// error.
type Pipeline struct {
	tr      nic.ClientTransport
	queues  int
	window  int
	timeout time.Duration
	retries int

	mu      sync.Mutex
	rng     *rand.Rand
	pending map[uint64]*pendingCall

	nextID atomic.Uint64
	tokens []chan struct{}

	sent      atomic.Uint64
	completed atomic.Uint64
	timedOut  atomic.Uint64
	retried   atomic.Uint64
	canceled  atomic.Uint64
	stale     atomic.Uint64
	badFrames atomic.Uint64

	start sync.Once
	stop  chan struct{}
	wake  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once
}

// PipelineConfig parameterizes a Pipeline. Zero fields take defaults.
type PipelineConfig struct {
	// Window is the maximum number of in-flight requests per RX queue
	// (default DefaultWindow).
	Window int
	// Timeout is the per-request deadline (default one second).
	Timeout time.Duration
	// Retries is how many times an expired request is retransmitted
	// before failing. The default 0 matches the paper's evaluation,
	// which reports loss rather than retransmitting (§5.4).
	Retries int
	// Seed drives GET queue steering.
	Seed int64
}

// DefaultWindow is the per-queue in-flight window when the config leaves
// it zero: deep enough to cover fabric round-trips, small enough that a
// stalled server bounds client memory.
const DefaultWindow = 32

// ErrTimeout is the terminal error of a request whose deadline (and
// retransmits, if configured) expired. It is the apierr taxonomy sentinel
// the public facade re-exports.
var ErrTimeout = apierr.ErrTimeout

// receiver tuning: how long one RecvBatch waits when the mailbox is
// empty, how many frames it drains per call, and how often the pending
// map is scanned for expired deadlines and cancelled contexts.
const (
	recvPoll      = time.Millisecond
	recvBatch     = 64
	expireScan    = time.Millisecond
	minReassemble = 64
)

// NewPipeline returns a pipeline over tr talking to a server with the
// given number of RX queues. The receiver goroutine starts lazily on the
// first submitted request; Close stops it and fails outstanding calls.
func NewPipeline(tr nic.ClientTransport, queues int, cfg PipelineConfig) *Pipeline {
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Second
	}
	if queues < 1 {
		queues = 1
	}
	p := &Pipeline{
		tr:      tr,
		queues:  queues,
		window:  cfg.Window,
		timeout: cfg.Timeout,
		retries: cfg.Retries,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		pending: make(map[uint64]*pendingCall),
		tokens:  make([]chan struct{}, queues),
		stop:    make(chan struct{}),
		wake:    make(chan struct{}, 1),
	}
	for i := range p.tokens {
		p.tokens[i] = make(chan struct{}, cfg.Window)
	}
	return p
}

// Window returns the per-queue in-flight window.
func (p *Pipeline) Window() int { return p.window }

// Queues returns the number of server RX queues requests spread over.
func (p *Pipeline) Queues() int { return p.queues }

// Call is one asynchronous request. Wait for Done (or call Wait/Value/Err,
// which block) before reading results.
type Call struct {
	// ID is the wire request id, unique per pipeline.
	ID uint64

	p     *Pipeline
	queue int
	done  chan struct{}
	value []byte
	err   error

	// pooled marks recycled calls backing the blocking wrappers: done is
	// a reusable capacity-1 channel signalled by a token send instead of
	// a close, and the struct goes back to callPool once the waiter has
	// read the results. Calls returned by the *Async methods are never
	// pooled — their Done contract requires a genuinely closed channel.
	pooled bool
	// dst, when set, receives the GET value by append (GetInto); nil
	// means the completion copies the value to fresh heap memory, the
	// public Get contract.
	dst []byte
	// tx is the reusable TX staging slice for leased request frames.
	tx []*mem.Buf
	// ttl is the remaining time-to-live the reply carried (whole
	// milliseconds, 0 = immortal or not a GET hit); read via ReplyTTL.
	ttl uint32
	// doneAt is stamped when the call finishes; read via DoneAt.
	doneAt time.Time
	// pc is the receiver-side state, embedded so a request costs no
	// separate pendingCall allocation.
	pc pendingCall
}

// callPool recycles blocking-wrapper calls; see Call.pooled.
var callPool sync.Pool

func (p *Pipeline) newPooledCall() *Call {
	c, _ := callPool.Get().(*Call)
	if c == nil {
		c = &Call{done: make(chan struct{}, 1), pooled: true}
	}
	c.p = p
	return c
}

// recycleCall scrubs and pools a completed blocking call. The caller must
// have consumed the done token and copied value/err out first.
func recycleCall(c *Call) {
	c.ID = 0
	c.p = nil
	c.queue = 0
	c.value = nil
	c.err = nil
	c.dst = nil
	c.ttl = 0
	c.doneAt = time.Time{}
	c.pc = pendingCall{}
	callPool.Put(c)
}

// Done is closed when the call completes, fails, or times out.
func (c *Call) Done() <-chan struct{} { return c.done }

// Value blocks until the call completes and returns its result: the value
// for GETs (a missing key is apierr.ErrNotFound), nil for acknowledged
// writes.
func (c *Call) Value() (value []byte, err error) {
	<-c.done
	return c.value, c.err
}

// Err blocks until the call completes and returns its terminal error.
func (c *Call) Err() error {
	<-c.done
	return c.err
}

// Wait blocks until the call completes or ctx is done. A context that
// fires first abandons the request — the in-flight window slot is
// released immediately — and returns the context's error.
func (c *Call) Wait(ctx context.Context) (value []byte, err error) {
	if ctx.Done() == nil {
		return c.Value()
	}
	select {
	case <-c.done:
	case <-ctx.Done():
		c.p.abandon(c, ctx.Err())
		<-c.done // abandon or a racing completion finished the call
	}
	return c.value, c.err
}

// Result returns the completed call's value and error without blocking.
// It is the accessor for pooled calls (GetCall), whose Done channel
// delivers a single token instead of closing: the receive from Done that
// observed completion also consumed the token, so the blocking Value/Err
// accessors would hang. Only valid after Done has been observed.
func (c *Call) Result() (value []byte, err error) { return c.value, c.err }

// ReplyTTL returns the remaining time-to-live the reply reported for the
// item a successful GET read: zero for immortal items, writes, and
// misses. Only valid after Done has been observed. Replicated clusters
// use it for read-repair — re-writing a value to a recovering replica
// with the TTL it has left, not the TTL it started with.
func (c *Call) ReplyTTL() time.Duration { return time.Duration(c.ttl) * time.Millisecond }

// DoneAt returns the instant the call finished — reply received,
// deadline fired, or abandoned. Only valid after Done has been observed.
// Latency accounting must use this rather than time.Now() at the point
// the caller notices completion: a caller collecting many calls in order
// notices late, and charging that wait to the node would feed inflated
// tails into the adaptive hedge delay.
func (c *Call) DoneAt() time.Time { return c.doneAt }

// GetCall submits a GET on a pooled call and returns without waiting —
// the building block of hedged cluster reads, which race two of these
// against each other. The contract is stricter than GetAsync in exchange
// for the steady state allocating only the reply value copy-out:
//
//   - Done delivers one token rather than closing; whoever receives it
//     must read results with Result/ReplyTTL, not Value/Err.
//   - Every call must end with exactly one ReleaseCall, after its Done
//     token was consumed. A lost call is first CancelCall'ed, then
//     drained (<-Done()), then released.
//
// key may be reused once GetCall returns.
func (p *Pipeline) GetCall(ctx context.Context, key []byte) *Call {
	call := p.newPooledCall()
	return p.submitCall(ctx, call, wire.OpGetRequest, key, nil, 0, p.timeout)
}

// CancelCall abandons an in-flight pooled call: if the request is still
// pending its window slot is released immediately and the call finishes
// with context.Canceled; if a completion won the race, that result
// stands. Either way the Done token is (or will shortly be) delivered —
// the caller still drains it before ReleaseCall.
func (p *Pipeline) CancelCall(c *Call) { p.abandon(c, context.Canceled) }

// ReleaseCall recycles a pooled call whose Done token has been consumed
// and whose results have been copied out. Releasing a non-pooled
// (*Async) call is a no-op.
func (p *Pipeline) ReleaseCall(c *Call) {
	if c.pooled {
		recycleCall(c)
	}
}

func (c *Call) finish(value []byte, err error) {
	c.doneAt = time.Now()
	c.value, c.err = value, err
	if c.pooled {
		c.done <- struct{}{}
		return
	}
	close(c.done)
}

// pendingCall is the receiver-side state of an in-flight request.
type pendingCall struct {
	call     *Call
	op       wire.Op
	ctx      context.Context
	queue    int
	deadline time.Time
	attempts int
	frames   [][]byte // retained for retransmission; nil when Retries == 0
}

// PipelineStats is a snapshot of pipeline counters.
type PipelineStats struct {
	Sent      uint64 // requests submitted to the transport
	Completed uint64 // requests that got a matching reply
	TimedOut  uint64 // requests that exhausted deadline and retries
	Retried   uint64 // retransmissions performed
	Canceled  uint64 // requests abandoned by context cancellation
	Stale     uint64 // reply frames for no pending request (late or duplicate)
	BadFrames uint64 // undecodable reply frames
	InFlight  int    // currently pending requests
}

// Stats snapshots the counters.
func (p *Pipeline) Stats() PipelineStats {
	p.mu.Lock()
	inflight := len(p.pending)
	p.mu.Unlock()
	return PipelineStats{
		Sent:      p.sent.Load(),
		Completed: p.completed.Load(),
		TimedOut:  p.timedOut.Load(),
		Retried:   p.retried.Load(),
		Canceled:  p.canceled.Load(),
		Stale:     p.stale.Load(),
		BadFrames: p.badFrames.Load(),
		InFlight:  inflight,
	}
}

// steer picks the RX queue: random for GETs, keyhash for writes (§3).
func (p *Pipeline) steer(op wire.Op, key []byte) uint16 {
	if !op.IsWrite() {
		p.mu.Lock()
		q := p.rng.Intn(p.queues)
		p.mu.Unlock()
		return uint16(q)
	}
	return uint16(kv.Hash(key) % uint64(p.queues))
}

// GetAsync submits a GET and returns immediately (unless the target
// queue's window is full, in which case it blocks for a slot). key may be
// reused once GetAsync returns.
func (p *Pipeline) GetAsync(key []byte) *Call {
	return p.submit(context.Background(), wire.OpGetRequest, key, nil, 0, p.timeout)
}

// PutAsync submits a PUT. key and value may be reused once it returns.
func (p *Pipeline) PutAsync(key, value []byte) *Call {
	return p.submit(context.Background(), wire.OpPutRequest, key, value, 0, p.timeout)
}

// PutTTLAsync submits a PUT whose item expires after ttl.
func (p *Pipeline) PutTTLAsync(key, value []byte, ttl time.Duration) *Call {
	return p.submit(context.Background(), wire.OpPutRequest, key, value, ttlMillis(ttl), p.timeout)
}

// DeleteAsync submits a DELETE. key may be reused once it returns.
func (p *Pipeline) DeleteAsync(key []byte) *Call {
	return p.submit(context.Background(), wire.OpDeleteRequest, key, nil, 0, p.timeout)
}

// Get is the blocking wrapper: one GET, wait for its reply. A missing key
// returns apierr.ErrNotFound; a key whose expired item the read itself
// observed returns apierr.ErrEvicted (which also matches ErrNotFound).
// The distinction is best-effort: once a sweep or the eviction clock has
// reclaimed the item, the miss is plain ErrNotFound. The returned value is
// freshly allocated and owned by the caller; GetInto is the
// zero-allocation variant.
func (p *Pipeline) Get(ctx context.Context, key []byte) (value []byte, err error) {
	return p.doSync(ctx, wire.OpGetRequest, key, nil, 0, nil, false)
}

// GetInto is Get appending the value into dst (which may be nil), the way
// kv.Store.Get does: it returns the extended slice on a hit and dst
// unchanged on a miss or error. When cap(dst) covers the value, the whole
// round trip allocates nothing.
func (p *Pipeline) GetInto(ctx context.Context, key, dst []byte) (value []byte, err error) {
	return p.doSync(ctx, wire.OpGetRequest, key, nil, 0, dst, true)
}

// Put is the blocking wrapper: one PUT, wait for its acknowledgment.
func (p *Pipeline) Put(ctx context.Context, key, value []byte) error {
	_, err := p.doSync(ctx, wire.OpPutRequest, key, value, 0, nil, false)
	return err
}

// PutTTL stores value under key with a time-to-live: reads after ttl
// elapses miss — with apierr.ErrEvicted when the read observes the
// expired item, plain apierr.ErrNotFound once a sweep already reclaimed
// it. ttl <= 0 stores an immortal item (identical to Put). The wire
// carries whole milliseconds; sub-millisecond TTLs round up.
func (p *Pipeline) PutTTL(ctx context.Context, key, value []byte, ttl time.Duration) error {
	_, err := p.doSync(ctx, wire.OpPutRequest, key, value, ttlMillis(ttl), nil, false)
	return err
}

// Delete removes key, waiting for the acknowledgment. Deleting a key that
// does not exist returns apierr.ErrNotFound.
func (p *Pipeline) Delete(ctx context.Context, key []byte) error {
	_, err := p.doSync(ctx, wire.OpDeleteRequest, key, nil, 0, nil, false)
	return err
}

// doSync runs one blocking request on a recycled call, so the steady-state
// synchronous path allocates neither a Call, a done channel, a
// pendingCall, nor (via the leased encode path) any frame.
func (p *Pipeline) doSync(ctx context.Context, op wire.Op, key, value []byte, ttlMs uint32, dst []byte, intoDst bool) ([]byte, error) {
	call := p.newPooledCall()
	call.dst = dst
	p.submitCall(ctx, call, op, key, value, ttlMs, p.timeout)
	if ctx.Done() == nil {
		<-call.done
	} else {
		select {
		case <-call.done:
		case <-ctx.Done():
			p.abandon(call, ctx.Err())
			<-call.done // abandon or a racing completion finished the call
		}
	}
	v, err := call.value, call.err
	recycleCall(call)
	if intoDst && v == nil {
		v = dst // miss or failure: GetInto leaves dst as it was
	}
	return v, err
}

// ttlMillis converts a TTL to the wire's millisecond field, rounding up
// so a positive TTL never becomes "immortal", and saturating at the
// field's ~49-day maximum.
func ttlMillis(ttl time.Duration) uint32 {
	if ttl <= 0 {
		return 0
	}
	ms := (int64(ttl) + int64(time.Millisecond) - 1) / int64(time.Millisecond)
	if ms > int64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(ms)
}

// MultiGet pipelines one GET per key and waits for all of them — the
// fan-out pattern of §1, where application response time is the slowest of
// K parallel GETs. values[i] carries the value for keys[i]; a missing key
// leaves values[i] nil without failing the batch. err is the first
// failure other than a miss, if any (remaining results are still filled
// in).
func (p *Pipeline) MultiGet(ctx context.Context, keys [][]byte) (values [][]byte, err error) {
	calls := make([]*Call, len(keys))
	for i, k := range keys {
		calls[i] = p.submit(ctx, wire.OpGetRequest, k, nil, 0, p.timeout)
	}
	values = make([][]byte, len(keys))
	for i, c := range calls {
		v, cerr := c.Wait(ctx)
		values[i] = v
		if cerr != nil && err == nil && !errors.Is(cerr, apierr.ErrNotFound) {
			err = cerr
		}
	}
	return values, err
}

// submit allocates a fresh asynchronous call and transmits it; the *Async
// methods use it so their Done channel really closes.
func (p *Pipeline) submit(ctx context.Context, op wire.Op, key, value []byte, ttlMs uint32, timeout time.Duration) *Call {
	call := &Call{p: p, done: make(chan struct{})}
	return p.submitCall(ctx, call, op, key, value, ttlMs, timeout)
}

// submitCall encodes and transmits one request with the given deadline on
// the provided (fresh or recycled) call. ttlMs rides in the header on PUTs
// (0 = no expiry).
//
// Request frames are leased and handed to the transport, which recycles
// them once transmitted (or forwards them through the in-process fabric to
// the server, which recycles them after serving). With Retries > 0 the
// frames are instead plain heap memory retained on the pendingCall: a
// retransmission may race with the first copy still sitting in a transport
// ring, so the bytes must stay immutable until the call completes.
func (p *Pipeline) submitCall(ctx context.Context, call *Call, op wire.Op, key, value []byte, ttlMs uint32, timeout time.Duration) *Call {
	p.start.Do(func() {
		p.wg.Add(1)
		go p.receiverLoop()
	})
	// Cancelled before send: fail without transmitting or consuming a
	// window slot.
	if err := ctx.Err(); err != nil {
		p.canceled.Add(1)
		call.finish(nil, err)
		return call
	}
	if len(key) > wire.MaxKeySize {
		call.finish(nil, fmt.Errorf("client: %d byte key: %w", len(key), apierr.ErrKeyTooLarge))
		return call
	}
	if len(value) > wire.MaxValueSize {
		call.finish(nil, fmt.Errorf("client: %d byte value: %w", len(value), apierr.ErrValueTooLarge))
		return call
	}
	if timeout <= 0 {
		timeout = p.timeout
	}
	q := int(p.steer(op, key))
	call.queue = q
	// Acquire a window slot on the target queue; released on completion,
	// terminal timeout, or abandonment.
	select {
	case p.tokens[q] <- struct{}{}:
	case <-ctx.Done():
		p.canceled.Add(1)
		call.finish(nil, ctx.Err())
		return call
	case <-p.stop:
		call.finish(nil, apierr.ErrClosed)
		return call
	}
	call.ID = p.nextID.Add(1)
	msg := wire.Message{
		Op:        op,
		RxQueue:   uint16(q),
		ReqID:     call.ID,
		Timestamp: time.Now().UnixNano(),
		TTL:       ttlMs,
		Key:       key,
		Value:     value,
	}
	pc := &call.pc
	pc.call = call
	pc.op = op
	pc.queue = q
	pc.deadline = time.Now().Add(timeout)
	if ctx.Done() != nil {
		pc.ctx = ctx
	}
	if p.retries > 0 {
		pc.frames = msg.Frames()
		call.tx = appendStatic(call.tx[:0], pc.frames)
	} else {
		call.tx = msg.LeaseFrames(call.tx[:0])
	}
	p.mu.Lock()
	p.pending[call.ID] = pc
	p.mu.Unlock()
	// Rouse the receiver if it parked on an empty pipeline; the buffered
	// channel makes the signal stick even if it is mid-check.
	select {
	case p.wake <- struct{}{}:
	default:
	}
	if err := p.tr.SendBatch(q, call.tx); err != nil {
		p.abandon(call, err)
		return call
	}
	// If the pipeline stopped between the window acquire and the insert,
	// the receiver may already have drained the pending map; reclaim the
	// entry here so the call cannot hang. Removal is guarded by mu, so
	// exactly one of failAll, abandon and complete finishes the call.
	select {
	case <-p.stop:
		p.abandon(call, apierr.ErrClosed)
	default:
	}
	p.sent.Add(1)
	return call
}

// appendStatic wraps heap frames for a transport that now takes owned
// buffers; Static buffers survive the transport's Release, which is what
// the retransmission path needs.
func appendStatic(dst []*mem.Buf, frames [][]byte) []*mem.Buf {
	for _, f := range frames {
		dst = append(dst, mem.Static(f))
	}
	return dst
}

// abandon removes call from the pending map if it is still there and, if
// so, releases its window slot and fails it with err. Losing the race to
// a completion or shutdown is fine: whoever removed the entry finished
// the call.
func (p *Pipeline) abandon(call *Call, err error) {
	p.mu.Lock()
	_, still := p.pending[call.ID]
	if still {
		delete(p.pending, call.ID)
	}
	p.mu.Unlock()
	if still {
		<-p.tokens[call.queue]
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			p.canceled.Add(1)
		}
		call.finish(nil, err)
	}
}

// receiverLoop drains reply frames, matches them to pending calls by
// request id, reassembles fragmented replies, and expires deadlines. It is
// the only goroutine that completes calls from replies, so completion and
// expiry never race with each other.
func (p *Pipeline) receiverLoop() {
	defer p.wg.Done()
	bufs := make([][]byte, recvBatch)
	for i := range bufs {
		bufs[i] = make([]byte, wire.MTU)
	}
	// One reassembler keyed by request id via the single source 0; sized
	// to the whole window so fragmented replies are never evicted while
	// their request is still pending.
	maxPending := p.window * p.queues
	if maxPending < minReassemble {
		maxPending = minReassemble
	}
	reasm := wire.NewReassembler(maxPending)
	// scratch is the reusable decode target: single-fragment replies alias
	// the recv buffer (valid until the next RecvBatch reuses it, which is
	// after complete copies the value out), and reassembled replies move
	// their leased body into it, recycled by the Reset below.
	var scratch wire.Message
	nextExpire := time.Now().Add(expireScan)
	for {
		select {
		case <-p.stop:
			p.failAll(apierr.ErrClosed)
			return
		default:
		}
		// With nothing in flight there is nothing to receive or expire:
		// park until a submit signals instead of polling the transport.
		// Stale frames for long-gone requests wait in the transport
		// until the next activity, where they are drained and counted.
		p.mu.Lock()
		idle := len(p.pending) == 0
		p.mu.Unlock()
		if idle {
			select {
			case <-p.wake:
			case <-p.stop:
				p.failAll(apierr.ErrClosed)
				return
			}
		}
		n := p.tr.RecvBatch(bufs, recvPoll)
		for i := 0; i < n; i++ {
			frame := bufs[i]
			id, ok := wire.PeekReqID(frame)
			if !ok {
				p.badFrames.Add(1)
				continue
			}
			p.mu.Lock()
			pc := p.pending[id]
			p.mu.Unlock()
			if pc == nil {
				p.stale.Add(1) // reply for a timed-out or duplicate request
				continue
			}
			done, err := reasm.AddInto(0, frame, &scratch)
			if err != nil {
				p.badFrames.Add(1)
				continue
			}
			if !done {
				continue // fragment of a still-incomplete reply
			}
			p.complete(pc, &scratch)
			scratch.Reset()
		}
		if now := time.Now(); now.After(nextExpire) {
			p.expire(now)
			nextExpire = now.Add(expireScan)
		}
	}
}

// complete finishes a call from its reply message. Removal from the
// pending map decides ownership: a concurrent shutdown path (abandon,
// failAll) that already removed the entry also already finished the call.
func (p *Pipeline) complete(pc *pendingCall, msg *wire.Message) {
	p.mu.Lock()
	_, still := p.pending[msg.ReqID]
	if still {
		delete(p.pending, msg.ReqID)
	}
	p.mu.Unlock()
	if !still {
		p.stale.Add(1)
		return
	}
	<-p.tokens[pc.queue]
	p.completed.Add(1)
	pc.call.ttl = msg.TTL
	value, err := resultFor(pc.op, msg)
	if value != nil {
		// msg aliases the receive buffer (or a leased reassembly body)
		// that is recycled right after this call, so the value must be
		// copied out before the call is finished. The copy lands in the
		// caller-provided GetInto destination when there is one; plain Get
		// leaves dst nil and pays exactly this one heap allocation — the
		// documented copy-out contract.
		value = append(pc.call.dst, value...)
	}
	pc.call.finish(value, err)
}

// resultFor maps a reply's status to the error taxonomy: StatusNotFound
// becomes ErrNotFound, StatusEvicted becomes ErrEvicted (a subtype of
// ErrNotFound under errors.Is), StatusTooLarge becomes ErrValueTooLarge,
// and any other non-OK status wraps ErrServer with the op and code
// preserved in the message.
func resultFor(op wire.Op, msg *wire.Message) (value []byte, err error) {
	switch msg.Status {
	case wire.StatusOK:
		if op == wire.OpGetRequest {
			return msg.Value, nil
		}
		return nil, nil
	case wire.StatusNotFound:
		return nil, apierr.ErrNotFound
	case wire.StatusEvicted:
		return nil, apierr.ErrEvicted
	case wire.StatusTooLarge:
		return nil, apierr.ErrValueTooLarge
	default:
		return nil, fmt.Errorf("client: %v failed with status %d: %w", op, msg.Status, apierr.ErrServer)
	}
}

// expire retransmits or fails every pending call past its deadline, and
// abandons calls whose context was cancelled — so cancellation releases
// the window slot promptly even when nobody is blocked in Wait.
func (p *Pipeline) expire(now time.Time) {
	type deadCall struct {
		pc  *pendingCall
		err error
	}
	var resend []*pendingCall
	var dead []deadCall
	p.mu.Lock()
	for id, pc := range p.pending {
		if pc.ctx != nil {
			if err := pc.ctx.Err(); err != nil {
				delete(p.pending, id)
				dead = append(dead, deadCall{pc, err})
				continue
			}
		}
		if now.Before(pc.deadline) {
			continue
		}
		if pc.attempts < p.retries {
			pc.attempts++
			pc.deadline = now.Add(p.timeout)
			resend = append(resend, pc)
		} else {
			delete(p.pending, id)
			dead = append(dead, deadCall{pc, ErrTimeout})
		}
	}
	p.mu.Unlock()
	for _, pc := range resend {
		// Retransmission is a rare loss-recovery path: wrapping the
		// retained heap frames in Static buffers (one small allocation
		// each) keeps them immutable across however many copies are in
		// flight, while satisfying the transport's owned-buffer contract.
		p.retried.Add(1)
		_ = p.tr.SendBatch(pc.queue, appendStatic(nil, pc.frames))
	}
	for _, d := range dead {
		<-p.tokens[d.pc.queue]
		if d.err == ErrTimeout {
			p.timedOut.Add(1)
		} else {
			p.canceled.Add(1)
		}
		d.pc.call.finish(nil, d.err)
	}
}

// failAll terminates every pending call with err (pipeline shutdown).
func (p *Pipeline) failAll(err error) {
	p.mu.Lock()
	pending := p.pending
	p.pending = make(map[uint64]*pendingCall)
	p.mu.Unlock()
	for _, pc := range pending {
		<-p.tokens[pc.queue]
		pc.call.finish(nil, err)
	}
}

// Close stops the receiver and fails outstanding calls with ErrClosed.
// The transport is not closed; the caller owns it.
func (p *Pipeline) Close() error {
	p.once.Do(func() { close(p.stop) })
	p.wg.Wait()
	return nil
}
