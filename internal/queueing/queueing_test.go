package queueing

import (
	"math"
	"testing"

	"github.com/minoskv/minos/internal/sim"
)

// testDur keeps unit-test runs short while collecting enough samples for
// stable 99th percentiles (hundreds of thousands of jobs per run).
const (
	testDur  = 400 * sim.Millisecond
	testWarm = 40 * sim.Millisecond
)

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	cfg.Duration = testDur
	cfg.Warmup = testWarm
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%+v): %v", cfg, err)
	}
	if res.Completed == 0 {
		t.Fatalf("Run(%+v): no completions", cfg)
	}
	return res
}

// TestMD1MeanWait checks the simulator against M/D/1 theory: with one core
// and deterministic unit service, the mean waiting time is
// rho/(2(1-rho)) service units.
func TestMD1MeanWait(t *testing.T) {
	for _, rho := range []float64{0.3, 0.5, 0.7} {
		res := run(t, Config{Model: NxMG1, Cores: 1, K: 1, Rho: rho, Seed: 42})
		wantSojourn := 1 + rho/(2*(1-rho))
		if rel := math.Abs(res.Mean-wantSojourn) / wantSojourn; rel > 0.05 {
			t.Errorf("rho=%.1f: mean sojourn = %.3f, M/D/1 theory %.3f (rel err %.1f%%)",
				rho, res.Mean, wantSojourn, rel*100)
		}
	}
}

// TestKOneModelsAgree: with no large requests all three disciplines face
// the same workload; late binding must be at least as good as early
// binding, and all should be within a small factor at moderate load.
func TestKOneModelsAgree(t *testing.T) {
	base := Config{Cores: 8, K: 1, Rho: 0.5, Seed: 7}
	var p99 [3]float64
	for m := NxMG1; m <= NxMG1Steal; m++ {
		cfg := base
		cfg.Model = m
		p99[m] = run(t, cfg).P99
	}
	if p99[MGn] > p99[NxMG1] {
		t.Errorf("M/G/n p99 %.2f > nxM/G/1 p99 %.2f at K=1: late binding should not lose", p99[MGn], p99[NxMG1])
	}
	if p99[NxMG1Steal] > p99[NxMG1] {
		t.Errorf("stealing p99 %.2f > plain p99 %.2f at K=1", p99[NxMG1Steal], p99[NxMG1])
	}
}

// TestHeadOfLineBlocking is the paper's core claim (§2.2): 0.125% of
// requests at K=1000 inflate the 99th percentile of nxM/G/1 by orders of
// magnitude even at low load.
func TestHeadOfLineBlocking(t *testing.T) {
	at := func(k float64) float64 {
		return run(t, Config{Model: NxMG1, Cores: 8, FracLarge: PaperFracLarge, K: k, Rho: 0.2, Seed: 3}).P99
	}
	base := at(1)
	inflated := at(1000)
	if inflated < 20*base {
		t.Errorf("K=1000 p99 = %.1f, K=1 p99 = %.1f: want >= 20x inflation from HOL blocking", inflated, base)
	}
}

// TestLateBindingResists: at low load M/G/n absorbs large requests far
// better than nxM/G/1 (Figure 2b vs 2a).
func TestLateBindingResists(t *testing.T) {
	cfg := Config{Cores: 8, FracLarge: PaperFracLarge, K: 100, Rho: 0.3, Seed: 5}
	cfg.Model = NxMG1
	early := run(t, cfg).P99
	cfg.Model = MGn
	late := run(t, cfg).P99
	if late >= early {
		t.Errorf("M/G/n p99 %.1f >= nxM/G/1 p99 %.1f at rho=0.3, K=100: late binding should win", late, early)
	}
}

// TestStealingHelpsAtLowLoad: stealing recovers much of the HOL damage at
// low load (Figure 2c), sitting between plain nxM/G/1 and M/G/n.
func TestStealingHelpsAtLowLoad(t *testing.T) {
	cfg := Config{Cores: 8, FracLarge: PaperFracLarge, K: 1000, Rho: 0.3, Seed: 11}
	cfg.Model = NxMG1
	plain := run(t, cfg).P99
	cfg.Model = NxMG1Steal
	steal := run(t, cfg).P99
	if steal >= plain {
		t.Errorf("stealing p99 %.1f >= plain p99 %.1f at rho=0.3, K=1000", steal, plain)
	}
}

// TestStealingDegradesAtHighLoad: as load grows idle cores become rare and
// stealing's advantage over plain keyhash sharding shrinks — the reason
// Minos does not rely on stealing (§2.2). We check the ratio
// p99(steal)/p99(plain) grows from low to high load.
func TestStealingDegradesAtHighLoad(t *testing.T) {
	ratio := func(rho float64) float64 {
		cfg := Config{Cores: 8, FracLarge: PaperFracLarge, K: 100, Rho: rho, Seed: 13}
		cfg.Model = NxMG1
		plain := run(t, cfg).P99
		cfg.Model = NxMG1Steal
		steal := run(t, cfg).P99
		return steal / plain
	}
	low, high := ratio(0.2), ratio(0.75)
	if high <= low {
		t.Errorf("steal/plain p99 ratio: low load %.3f, high load %.3f; want advantage to erode with load", low, high)
	}
}

func TestMaxStableRho(t *testing.T) {
	c := Config{FracLarge: 0.00125, K: 1000}
	want := 1 / (1 + 0.00125*999)
	if got := c.MaxStableRho(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("MaxStableRho = %v, want %v", got, want)
	}
	c.K = 1
	if got := c.MaxStableRho(); got != 1 {
		t.Fatalf("MaxStableRho at K=1 = %v, want 1", got)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Model: NxMG1Steal, Cores: 4, FracLarge: 0.01, K: 50, Rho: 0.6,
		Duration: 100 * sim.Millisecond, Warmup: 10 * sim.Millisecond, Seed: 99}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.P99 != b.P99 || a.Completed != b.Completed || a.Mean != b.Mean {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Cores: -1, Rho: 0.5, K: 1},
		{Cores: 8, Rho: 0, K: 1},
		{Cores: 8, Rho: 0.5, K: 0.5},
		{Cores: 8, Rho: 0.5, K: 1, FracLarge: 1.5},
	}
	for i, cfg := range bad {
		if cfg.Duration == 0 {
			cfg.Duration = sim.Second
		}
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d: expected validation error", i)
		}
	}
}

func TestThroughputTracksOfferedLoad(t *testing.T) {
	// Below saturation, completions per unit time must match arrivals.
	res := run(t, Config{Model: MGn, Cores: 8, FracLarge: PaperFracLarge, K: 100, Rho: 0.5, Seed: 21})
	window := float64(testDur - testWarm)
	gotRate := float64(res.Completed) / window * float64(Unit) // jobs per unit time
	wantRate := 0.5 * 8
	if rel := math.Abs(gotRate-wantRate) / wantRate; rel > 0.05 {
		t.Errorf("throughput = %.2f jobs/unit, want %.2f (rel err %.1f%%)", gotRate, wantRate, rel*100)
	}
	if res.AchievedRho > 0.6 || res.AchievedRho < 0.4 {
		t.Errorf("AchievedRho = %.3f, want about 0.5", res.AchievedRho)
	}
}

func TestCurve(t *testing.T) {
	points, err := Curve(NxMG1, 10, PaperFracLarge, []float64{0.2, 0.5},
		100*sim.Millisecond, 10*sim.Millisecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	if points[1].Result.P99 < points[0].Result.P99 {
		t.Errorf("p99 decreased with load: %.2f -> %.2f", points[0].Result.P99, points[1].Result.P99)
	}
}
