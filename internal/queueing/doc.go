// Package queueing implements the abstract queueing simulations of §2.2
// (Figure 2): three size-unaware request-dispatch disciplines on an n-core
// server under a bimodal service-time distribution, showing how a tiny
// fraction of large requests inflates the 99th-percentile response time.
//
//   - NxMG1: requests are bound to a uniformly random core on arrival
//     (early binding; the keyhash dispatch of MICA's EREW mode).
//   - MGn: one shared queue, requests bound to a core when it becomes idle
//     (late binding; RAMCloud-style).
//   - NxMG1Steal: NxMG1 plus work stealing — an idle core takes the
//     head-of-queue request from another core (ZygOS-style).
//
// Per the paper, the simulation is idealized: dispatch, synchronization and
// stealing are free, and there are no locality effects. Its purpose is to
// isolate head-of-line blocking, not to predict absolute performance of
// real systems (that is what internal/simsys does).
package queueing
