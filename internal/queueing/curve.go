package queueing

import (
	"github.com/minoskv/minos/internal/sim"
)

// CurvePoint pairs an offered load with the run that measured it.
type CurvePoint struct {
	Rho    float64
	Result Result
}

// Curve sweeps normalized load for one (model, K) pair, reproducing one
// line of Figure 2. Points beyond the stability bound saturate and report
// the correspondingly huge tail latencies, exactly as the paper's curves
// bend upward; callers that only want stable points can filter with
// Config.MaxStableRho.
func Curve(model Model, k, fracLarge float64, rhos []float64, duration, warmup sim.Time, seed int64) ([]CurvePoint, error) {
	points := make([]CurvePoint, 0, len(rhos))
	for i, rho := range rhos {
		res, err := Run(Config{
			Model:     model,
			FracLarge: fracLarge,
			K:         k,
			Rho:       rho,
			Duration:  duration,
			Warmup:    warmup,
			Seed:      seed + int64(i)*7919,
		})
		if err != nil {
			return nil, err
		}
		points = append(points, CurvePoint{Rho: rho, Result: res})
	}
	return points, nil
}

// DefaultRhos returns the load grid used by the Figure 2 reproduction.
func DefaultRhos() []float64 {
	return []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
}

// PaperKs returns the large-request service multipliers of Figure 2.
func PaperKs() []float64 { return []float64{1, 10, 100, 1000} }

// PaperFracLarge is the large-request fraction of §2.2 (0.125%).
const PaperFracLarge = 0.00125
