package queueing

import (
	"fmt"
	"math"

	"github.com/minoskv/minos/internal/sim"
	"github.com/minoskv/minos/internal/stats"
)

// Model selects the dispatch discipline.
type Model int

// The three disciplines of Figure 2.
const (
	NxMG1 Model = iota
	MGn
	NxMG1Steal
)

// String returns the paper's name for the model.
func (m Model) String() string {
	switch m {
	case NxMG1:
		return "nxM/G/1"
	case MGn:
		return "M/G/n"
	case NxMG1Steal:
		return "nxM/G/1+WS"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Config parameterizes one simulation run. The service-time unit is one
// small-request service time, mapped to 1 µs of virtual time.
type Config struct {
	Model Model

	// Cores is n (the paper's platform has 8).
	Cores int

	// FracLarge is the fraction of requests that are large
	// (paper: 0.00125, i.e. 0.125%).
	FracLarge float64

	// K is the service time of a large request in units of a small one
	// (paper: 1, 10, 100, 1000).
	K float64

	// Rho is the offered load normalized to the maximum throughput with
	// K = 1, i.e. the arrival rate is Rho × Cores requests per unit.
	Rho float64

	// Duration and Warmup bound the measured window: latencies of
	// requests arriving before Warmup or after Duration are discarded.
	Duration, Warmup sim.Time

	// Seed makes the run reproducible.
	Seed int64
}

// Unit is the virtual duration of one small-request service time.
const Unit = sim.Microsecond

func (c *Config) setDefaults() {
	if c.Cores == 0 {
		c.Cores = 8
	}
	if c.K == 0 {
		c.K = 1
	}
	if c.Duration == 0 {
		c.Duration = 2 * sim.Second
	}
	if c.Warmup == 0 {
		c.Warmup = c.Duration / 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Validate reports nonsensical configurations.
func (c Config) Validate() error {
	switch {
	case c.Cores < 1:
		return fmt.Errorf("queueing: Cores = %d, need >= 1", c.Cores)
	case c.FracLarge < 0 || c.FracLarge > 1:
		return fmt.Errorf("queueing: FracLarge = %g, need in [0, 1]", c.FracLarge)
	case c.K < 1:
		return fmt.Errorf("queueing: K = %g, need >= 1", c.K)
	case c.Rho <= 0:
		return fmt.Errorf("queueing: Rho = %g, need > 0", c.Rho)
	case c.Warmup >= c.Duration:
		return fmt.Errorf("queueing: Warmup %d >= Duration %d", c.Warmup, c.Duration)
	}
	return nil
}

// Result summarizes one run. Latencies are sojourn times (wait + service)
// in small-service units.
type Result struct {
	Config    Config
	Completed uint64
	// Mean, P50, P99, P999 and Max are response-time statistics in
	// small-service units.
	Mean, P50, P99, P999, Max float64
	// MeanService is E[S] in units, for capacity sanity checks.
	MeanService float64
	// AchievedRho is completed work divided by capacity over the
	// measured window; it trails Rho when the system is saturated.
	AchievedRho float64
}

// MaxStableRho returns the largest normalized load the configuration can
// sustain: Rho × E[S] < 1.
func (c Config) MaxStableRho() float64 {
	es := 1 + c.FracLarge*(c.K-1)
	return 1 / es
}

// job is one request flowing through the simulated server.
type job struct {
	arrive  sim.Time
	service sim.Time
}

// fifo is a slice-backed FIFO with O(1) amortized push/pop.
type fifo struct {
	buf  []job
	head int
}

func (q *fifo) push(j job) { q.buf = append(q.buf, j) }

func (q *fifo) pop() (job, bool) {
	if q.head >= len(q.buf) {
		return job{}, false
	}
	j := q.buf[q.head]
	q.head++
	// Compact once the dead prefix dominates, keeping memory bounded.
	if q.head > 64 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return j, true
}

func (q *fifo) len() int { return len(q.buf) - q.head }

// system is the simulation state shared by all three models.
type system struct {
	cfg     Config
	eng     *sim.Engine
	rng     interface{ Float64() float64 }
	gap     float64 // mean inter-arrival time in ns
	queues  []fifo  // per-core (NxMG1 variants) or queues[0] (MGn)
	busy    []bool
	current []job // job in service per core, for latency on completion
	lat     *stats.Histogram
	done    uint64
	busyNS  int64
	endAt   sim.Time
}

// Event arguments: arrival uses arg = -1; completion uses arg = core index.
const argArrival = -1

// Run executes one simulation and returns its result.
func Run(cfg Config) (Result, error) {
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	eng := &sim.Engine{}
	rng := sim.Stream(cfg.Seed, 0)
	s := &system{
		cfg:     cfg,
		eng:     eng,
		rng:     rng,
		gap:     float64(Unit) / (cfg.Rho * float64(cfg.Cores)),
		busy:    make([]bool, cfg.Cores),
		current: make([]job, cfg.Cores),
		lat:     stats.NewLatencyHistogram(),
		endAt:   cfg.Duration,
	}
	if cfg.Model == MGn {
		s.queues = make([]fifo, 1)
	} else {
		s.queues = make([]fifo, cfg.Cores)
	}
	// Prime the arrival process and run. Completions scheduled before
	// endAt may land after it; RunUntil past the horizon drains them so
	// in-flight work finishes, then measurement stops at endAt anyway.
	eng.After(s.nextGap(), s, argArrival, nil)
	eng.RunUntil(cfg.Duration + sim.Second*1000)

	res := Result{
		Config:      cfg,
		Completed:   s.done,
		Mean:        float64(s.lat.Mean()) / float64(Unit),
		P50:         float64(s.lat.P50()) / float64(Unit),
		P99:         float64(s.lat.P99()) / float64(Unit),
		P999:        float64(s.lat.Quantile(0.999)) / float64(Unit),
		Max:         float64(s.lat.Max()) / float64(Unit),
		MeanService: 1 + cfg.FracLarge*(cfg.K-1),
	}
	window := float64(cfg.Duration - cfg.Warmup)
	res.AchievedRho = float64(s.busyNS) / (window * float64(cfg.Cores))
	return res, nil
}

// nextGap draws an exponential inter-arrival time in ns.
func (s *system) nextGap() sim.Time {
	u := s.rng.Float64()
	for u <= 0 {
		u = s.rng.Float64()
	}
	return sim.Time(math.Round(-math.Log(u) * s.gap))
}

// drawService draws the bimodal service time.
func (s *system) drawService() sim.Time {
	if s.cfg.FracLarge > 0 && s.rng.Float64() < s.cfg.FracLarge {
		return sim.Time(math.Round(s.cfg.K * float64(Unit)))
	}
	return Unit
}

// Handle dispatches arrival and completion events.
func (s *system) Handle(e *sim.Engine, arg int64, _ any) {
	if arg == argArrival {
		s.arrive(e)
		return
	}
	s.complete(e, int(arg))
}

func (s *system) arrive(e *sim.Engine) {
	now := e.Now()
	if now < s.endAt {
		// Keep the arrival process going only inside the horizon.
		e.After(s.nextGap(), s, argArrival, nil)
	} else {
		return
	}
	j := job{arrive: now, service: s.drawService()}
	switch s.cfg.Model {
	case MGn:
		// Late binding: any idle core takes the job immediately.
		for c := range s.busy {
			if !s.busy[c] {
				s.start(e, c, j)
				return
			}
		}
		s.queues[0].push(j)
	default:
		// Early binding to a uniformly random core (keyhash dispatch).
		c := int(s.rng.Float64() * float64(s.cfg.Cores))
		if c >= s.cfg.Cores {
			c = s.cfg.Cores - 1
		}
		if !s.busy[c] {
			s.start(e, c, j)
			return
		}
		s.queues[c].push(j)
	}
}

// start puts job j in service on core c.
func (s *system) start(e *sim.Engine, c int, j job) {
	s.busy[c] = true
	s.current[c] = j
	e.After(j.service, s, int64(c), nil)
}

func (s *system) complete(e *sim.Engine, c int) {
	now := e.Now()
	j := s.current[c]
	// Latency is sampled by arrival window (the open-system view: every
	// request sent during the window counts, however late it finishes).
	if j.arrive >= s.cfg.Warmup && j.arrive < s.endAt {
		s.lat.Record(now - j.arrive)
	}
	// Throughput and utilization are sampled by completion window.
	if now >= s.cfg.Warmup && now < s.endAt {
		s.done++
		s.busyNS += int64(j.service)
	}
	// Take the next job: own queue first, then steal if the model
	// allows.
	var src *fifo
	switch s.cfg.Model {
	case MGn:
		src = &s.queues[0]
	default:
		src = &s.queues[c]
	}
	if next, ok := src.pop(); ok {
		s.start(e, c, next)
		return
	}
	if s.cfg.Model == NxMG1Steal {
		// Steal the oldest waiting request from the first non-empty
		// peer queue, scanning round-robin from our right neighbour.
		// Stealing one at a time avoids re-introducing head-of-line
		// blocking inside a stolen batch (§5.2).
		for i := 1; i < s.cfg.Cores; i++ {
			victim := (c + i) % s.cfg.Cores
			if next, ok := s.queues[victim].pop(); ok {
				s.start(e, c, next)
				return
			}
		}
	}
	s.busy[c] = false
}
