package replica

import (
	"sync"
	"time"
)

// Hint is one write a down replica missed: enough to replay it — with
// its remaining TTL — once the node answers probes again. Key and Value
// must be owned by the hint (the cluster copies them out of request
// buffers before logging).
type Hint struct {
	Key, Value []byte
	// Delete marks a replayed DELETE instead of a PUT.
	Delete bool
	// Expire is the absolute expiry deadline; the zero time means the
	// item never expires. A hint whose deadline passed is dropped at
	// replay rather than resurrecting a dead item.
	Expire time.Time
}

// Expired reports whether the hinted write's TTL has already lapsed.
func (h Hint) Expired(now time.Time) bool {
	return !h.Expire.IsZero() && !now.Before(h.Expire)
}

// DefaultHintLimit bounds the per-node hint queue when the config leaves
// it zero: enough to ride out a short outage under write load without
// letting a long-dead node pin unbounded memory.
const DefaultHintLimit = 4096

// Hints is the hinted-hand-off log: per down node, a bounded FIFO of the
// writes it missed. When the queue overflows, the oldest hint is dropped
// and counted — convergence then relies on read-repair and fresh write
// traffic, which DESIGN.md §9 documents as the (weaker) backstop.
type Hints struct {
	mu      sync.Mutex
	perNode map[string][]Hint
	limit   int
	queued  uint64
	dropped uint64
}

// NewHints builds a hint log with the given per-node cap (<=0 takes
// DefaultHintLimit).
func NewHints(perNodeLimit int) *Hints {
	if perNodeLimit <= 0 {
		perNodeLimit = DefaultHintLimit
	}
	return &Hints{perNode: make(map[string][]Hint), limit: perNodeLimit}
}

// Add logs a hint for node, dropping the oldest queued hint if the node's
// queue is full.
func (h *Hints) Add(node string, hint Hint) {
	h.mu.Lock()
	q := h.perNode[node]
	if len(q) >= h.limit {
		copy(q, q[1:])
		q = q[:len(q)-1]
		h.dropped++
	}
	h.perNode[node] = append(q, hint)
	h.queued++
	h.mu.Unlock()
}

// Take removes and returns up to max queued hints for node, oldest first.
// An empty return means the queue is drained.
func (h *Hints) Take(node string, max int) []Hint {
	h.mu.Lock()
	defer h.mu.Unlock()
	q := h.perNode[node]
	if len(q) == 0 {
		return nil
	}
	n := len(q)
	if max > 0 && n > max {
		n = max
	}
	out := make([]Hint, n)
	copy(out, q[:n])
	rest := q[n:]
	if len(rest) == 0 {
		delete(h.perNode, node)
	} else {
		h.perNode[node] = append(q[:0], rest...)
	}
	return out
}

// Requeue puts hints back at the head of node's queue (a replay batch
// that failed because the node died again mid-replay). Hints beyond the
// cap are dropped and counted.
func (h *Hints) Requeue(node string, hints []Hint) {
	if len(hints) == 0 {
		return
	}
	h.mu.Lock()
	q := h.perNode[node]
	merged := make([]Hint, 0, len(hints)+len(q))
	merged = append(merged, hints...)
	merged = append(merged, q...)
	if len(merged) > h.limit {
		h.dropped += uint64(len(merged) - h.limit)
		merged = merged[:h.limit]
	}
	h.perNode[node] = merged
	h.mu.Unlock()
}

// Pending returns how many hints are queued for node.
func (h *Hints) Pending(node string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.perNode[node])
}

// Forget discards node's queue (topology removal).
func (h *Hints) Forget(node string) {
	h.mu.Lock()
	delete(h.perNode, node)
	h.mu.Unlock()
}

// Queued returns the lifetime count of hints logged.
func (h *Hints) Queued() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.queued
}

// Dropped returns the lifetime count of hints lost to the per-node cap.
func (h *Hints) Dropped() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}
