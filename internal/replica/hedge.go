package replica

import (
	"sort"
	"time"
)

// Hedge-delay defaults. The quantile is the "p95-ish" of tail-tolerant
// request hedging: late enough that ~5% of requests duplicate, early
// enough to rescue the tail.
const (
	DefaultHedgeQuantile = 0.95
	DefaultHedgeMin      = 100 * time.Microsecond
	DefaultHedgeMax      = 10 * time.Millisecond
	DefaultHedgeRefresh  = 100 * time.Millisecond
)

// HedgePolicy turns per-node latency quantiles into the adaptive hedge
// delay: the median across nodes of each node's q-quantile, clamped to
// [Min, Max]. The median — not the merged distribution — is what makes
// the policy robust to the exact failure it exists to mask: one degraded
// node inflates its own p95 (and the merged p95 once its share of
// observations passes 1−q), but it cannot move the median of eight
// nodes, so hedges against it still fire on the healthy fleet's
// timescale.
type HedgePolicy struct {
	// Quantile of each node's latency histogram that feeds the delay
	// (default 0.95).
	Quantile float64
	// Min and Max clamp the delay: Min keeps hedges from firing inside
	// normal jitter, Max keeps a cold or idle histogram from deferring
	// them forever.
	Min, Max time.Duration
	// Refresh is how often the cached delay is recomputed from the
	// histograms (default 100ms); the read hot path only loads the
	// cached value.
	Refresh time.Duration
}

// WithDefaults fills zero fields.
func (p HedgePolicy) WithDefaults() HedgePolicy {
	if p.Quantile <= 0 || p.Quantile >= 1 {
		p.Quantile = DefaultHedgeQuantile
	}
	if p.Min <= 0 {
		p.Min = DefaultHedgeMin
	}
	if p.Max <= 0 {
		p.Max = DefaultHedgeMax
	}
	if p.Max < p.Min {
		p.Max = p.Min
	}
	if p.Refresh <= 0 {
		p.Refresh = DefaultHedgeRefresh
	}
	return p
}

// Delay computes the hedge delay from the live nodes' latency quantiles
// in nanoseconds. Non-positive entries (empty histograms) are ignored;
// with no data at all the delay is Max — no observations means no basis
// to duplicate work early.
func (p HedgePolicy) Delay(nodeQuantiles []int64) time.Duration {
	m := median(nodeQuantiles)
	if m <= 0 {
		return p.Max
	}
	d := time.Duration(m)
	if d < p.Min {
		d = p.Min
	}
	if d > p.Max {
		d = p.Max
	}
	return d
}

// median returns the median of the positive entries of xs (reordering
// xs in place), or 0 if none are positive.
func median(xs []int64) int64 {
	n := 0
	for _, x := range xs {
		if x > 0 {
			xs[n] = x
			n++
		}
	}
	if n == 0 {
		return 0
	}
	xs = xs[:n]
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	return xs[n/2]
}
