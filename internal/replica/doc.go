// Package replica holds the cluster's partial-failure machinery: a
// probe-driven failure detector (alive → suspect → dead, with probe
// timeouts and dead-node backoff), a bounded hinted-hand-off log that
// remembers the writes a down replica missed, and the adaptive
// hedge-delay policy that turns per-node latency quantiles into the
// "duplicate the read if it is slower than p95-ish" delay of
// tail-tolerant request hedging. The package is mechanism only — it
// never talks to the network itself; internal/cluster supplies the
// probe function (a cheap GET round trip) and consumes the state
// transitions to route requests around dead nodes and to replay hints
// when a node rejoins.
package replica
