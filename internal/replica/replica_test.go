package replica

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeProbe is a controllable prober: per-node health toggled by tests,
// with a call counter for backoff assertions.
type fakeProbe struct {
	mu    sync.Mutex
	down  map[string]bool
	calls map[string]int
}

func newFakeProbe() *fakeProbe {
	return &fakeProbe{down: map[string]bool{}, calls: map[string]int{}}
}

func (f *fakeProbe) set(node string, down bool) {
	f.mu.Lock()
	f.down[node] = down
	f.mu.Unlock()
}

func (f *fakeProbe) count(node string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[node]
}

func (f *fakeProbe) probe(_ context.Context, node string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls[node]++
	if f.down[node] {
		return errors.New("down")
	}
	return nil
}

// waitState polls until the detector reports want for node, or fails.
func waitState(t *testing.T, d *Detector, node string, want State) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if d.State(node) == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("node %s stuck in %v, want %v", node, d.State(node), want)
}

func TestDetectorStateMachine(t *testing.T) {
	fp := newFakeProbe()
	var mu sync.Mutex
	var transitions []string
	d := NewDetector(Config{
		Interval:     2 * time.Millisecond,
		Timeout:      10 * time.Millisecond,
		SuspectAfter: 2,
		DeadAfter:    2,
	}, fp.probe, func(node string, s State) {
		mu.Lock()
		transitions = append(transitions, fmt.Sprintf("%s:%v", node, s))
		mu.Unlock()
	})
	d.Watch("a")
	d.Watch("b")
	d.Start()
	defer d.Close()

	if got := d.State("a"); got != Alive {
		t.Fatalf("initial state = %v, want alive", got)
	}

	// Kill a: alive → suspect → dead, while b stays alive.
	fp.set("a", true)
	waitState(t, d, "a", Suspect)
	waitState(t, d, "a", Dead)
	if got := d.State("b"); got != Alive {
		t.Fatalf("healthy node b went %v", got)
	}
	if s, dead := d.Counts(); s != 0 || dead != 1 {
		t.Fatalf("Counts() = (%d suspect, %d dead), want (0, 1)", s, dead)
	}

	// Revive a: dead → alive on the first successful probe.
	fp.set("a", false)
	waitState(t, d, "a", Alive)

	mu.Lock()
	got := append([]string(nil), transitions...)
	mu.Unlock()
	want := []string{"a:suspect", "a:dead", "a:alive"}
	if len(got) < len(want) {
		t.Fatalf("transitions = %v, want at least %v", got, want)
	}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("transition %d = %q, want %q (all: %v)", i, got[i], w, got)
		}
	}
}

func TestDetectorDeadBackoff(t *testing.T) {
	fp := newFakeProbe()
	d := NewDetector(Config{
		Interval:     time.Millisecond,
		Timeout:      5 * time.Millisecond,
		SuspectAfter: 1,
		DeadAfter:    1,
		MaxBackoff:   50 * time.Millisecond,
	}, fp.probe, nil)
	d.Watch("x")
	fp.set("x", true)
	d.Start()
	defer d.Close()

	waitState(t, d, "x", Dead)
	// Once dead, probes back off: the probe rate over a window must be
	// far below the full per-interval rate.
	base := fp.count("x")
	time.Sleep(60 * time.Millisecond)
	probes := fp.count("x") - base
	if probes > 20 { // full rate would be ~60
		t.Fatalf("dead node probed %d times in 60ms: backoff not applied", probes)
	}
}

func TestDetectorForget(t *testing.T) {
	fp := newFakeProbe()
	d := NewDetector(Config{Interval: time.Millisecond, SuspectAfter: 1, DeadAfter: 1}, fp.probe, nil)
	d.Watch("gone")
	fp.set("gone", true)
	d.Start()
	defer d.Close()
	waitState(t, d, "gone", Dead)
	d.Forget("gone")
	if got := d.State("gone"); got != Alive {
		t.Fatalf("forgotten node reports %v, want alive (unwatched default)", got)
	}
	if s, dead := d.Counts(); s != 0 || dead != 0 {
		t.Fatalf("Counts() after Forget = (%d, %d), want (0, 0)", s, dead)
	}
}

func TestHintsBoundedFIFO(t *testing.T) {
	h := NewHints(3)
	for i := 0; i < 5; i++ {
		h.Add("n1", Hint{Key: []byte{byte(i)}})
	}
	if got := h.Pending("n1"); got != 3 {
		t.Fatalf("Pending = %d, want 3 (capped)", got)
	}
	if got := h.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	// Oldest dropped: the survivors are 2, 3, 4 in FIFO order.
	out := h.Take("n1", 10)
	if len(out) != 3 || out[0].Key[0] != 2 || out[2].Key[0] != 4 {
		t.Fatalf("Take = %v", out)
	}
	if h.Pending("n1") != 0 {
		t.Fatalf("queue not drained")
	}
	if got := h.Queued(); got != 5 {
		t.Fatalf("Queued = %d, want 5", got)
	}
}

func TestHintsTakeBatchAndRequeue(t *testing.T) {
	h := NewHints(10)
	for i := 0; i < 5; i++ {
		h.Add("n", Hint{Key: []byte{byte(i)}})
	}
	first := h.Take("n", 2)
	if len(first) != 2 || first[0].Key[0] != 0 || first[1].Key[0] != 1 {
		t.Fatalf("Take(2) = %v", first)
	}
	h.Requeue("n", first)
	all := h.Take("n", 0)
	if len(all) != 5 || all[0].Key[0] != 0 || all[4].Key[0] != 4 {
		t.Fatalf("after requeue Take = %v", all)
	}
}

func TestHintExpired(t *testing.T) {
	now := time.Now()
	if (Hint{}).Expired(now) {
		t.Fatal("immortal hint reported expired")
	}
	if !(Hint{Expire: now.Add(-time.Second)}).Expired(now) {
		t.Fatal("past-deadline hint reported live")
	}
	if (Hint{Expire: now.Add(time.Second)}).Expired(now) {
		t.Fatal("future-deadline hint reported expired")
	}
}

func TestHedgePolicyDelay(t *testing.T) {
	p := HedgePolicy{}.WithDefaults()
	if p.Quantile != DefaultHedgeQuantile || p.Min != DefaultHedgeMin {
		t.Fatalf("defaults not applied: %+v", p)
	}

	// Median of healthy nodes, not the outlier: seven fast nodes and one
	// degraded node must hedge on the fast timescale.
	qs := []int64{
		int64(200 * time.Microsecond), int64(210 * time.Microsecond),
		int64(190 * time.Microsecond), int64(205 * time.Microsecond),
		int64(195 * time.Microsecond), int64(202 * time.Microsecond),
		int64(208 * time.Microsecond), int64(5 * time.Millisecond), // degraded
	}
	d := p.Delay(qs)
	if d > time.Millisecond {
		t.Fatalf("delay %v tracks the degraded outlier, want healthy median", d)
	}

	// Clamping.
	if got := p.Delay([]int64{1}); got != p.Min {
		t.Fatalf("tiny quantile → %v, want Min %v", got, p.Min)
	}
	if got := p.Delay([]int64{int64(time.Minute)}); got != p.Max {
		t.Fatalf("huge quantile → %v, want Max %v", got, p.Max)
	}
	// No data: be conservative, hedge late.
	if got := p.Delay(nil); got != p.Max {
		t.Fatalf("empty → %v, want Max", got)
	}
	if got := p.Delay([]int64{0, -5}); got != p.Max {
		t.Fatalf("all non-positive → %v, want Max", got)
	}
}
