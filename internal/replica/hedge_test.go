package replica

import (
	"testing"
	"time"
)

// TestHedgePolicyDelayTable pins the estimator's edge behaviour: the
// delay is the median of the *positive* per-node quantiles (empty
// histograms report 0 and must not drag the median down), clamped to
// [Min, Max], with Max as the conservative answer whenever there is no
// signal at all — a cold cluster, a single node with no observations,
// or a fleet the detector holds entirely dead (no live quantiles to
// feed in).
func TestHedgePolicyDelayTable(t *testing.T) {
	ms := func(d time.Duration) int64 { return int64(d) }
	def := HedgePolicy{}.WithDefaults()
	tests := []struct {
		name string
		pol  HedgePolicy
		qs   []int64
		want time.Duration
	}{
		{
			name: "all-dead cluster: no live quantiles, hedge late",
			pol:  def,
			qs:   nil,
			want: def.Max,
		},
		{
			name: "cold cluster: every histogram empty",
			pol:  def,
			qs:   []int64{0, 0, 0, 0},
			want: def.Max,
		},
		{
			name: "single live node inside the clamp: its p95 is the delay",
			pol:  def,
			qs:   []int64{ms(300 * time.Microsecond)},
			want: 300 * time.Microsecond,
		},
		{
			name: "single live node, empty histogram",
			pol:  def,
			qs:   []int64{0},
			want: def.Max,
		},
		{
			name: "empty histograms ignored, not counted as fast nodes",
			pol:  def,
			qs:   []int64{0, 0, 0, ms(400 * time.Microsecond), ms(500 * time.Microsecond)},
			want: 500 * time.Microsecond, // median of {400µs, 500µs}, not of {0,0,0,...}
		},
		{
			name: "median below Min clamps up",
			pol:  def,
			qs:   []int64{ms(5 * time.Microsecond), ms(8 * time.Microsecond), ms(10 * time.Microsecond)},
			want: def.Min,
		},
		{
			name: "median above Max clamps down",
			pol:  def,
			qs:   []int64{ms(40 * time.Millisecond), ms(50 * time.Millisecond), ms(60 * time.Millisecond)},
			want: def.Max,
		},
		{
			name: "one degraded node cannot move the fleet median",
			pol:  def,
			qs: []int64{
				ms(200 * time.Microsecond), ms(210 * time.Microsecond),
				ms(190 * time.Microsecond), ms(8 * time.Millisecond), // the straggler
				ms(205 * time.Microsecond),
			},
			want: 205 * time.Microsecond,
		},
		{
			name: "even count takes the upper-middle quantile",
			pol:  def,
			qs:   []int64{ms(200 * time.Microsecond), ms(300 * time.Microsecond)},
			want: 300 * time.Microsecond,
		},
		{
			name: "custom clamp with Max below Min normalizes to Min",
			pol:  HedgePolicy{Min: 2 * time.Millisecond, Max: time.Millisecond}.WithDefaults(),
			qs:   []int64{ms(5 * time.Millisecond)},
			want: 2 * time.Millisecond,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.pol.Delay(tc.qs); got != tc.want {
				t.Fatalf("Delay(%v) = %v, want %v", tc.qs, got, tc.want)
			}
		})
	}
}
