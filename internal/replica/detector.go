package replica

import (
	"context"
	"sync"
	"time"
)

// State is a node's health as seen by the failure detector.
type State int32

const (
	// Alive is the healthy default: probes answer within the timeout.
	// It is the zero value, so an unwatched or just-added node routes
	// normally.
	Alive State = iota
	// Suspect means probes have started failing but not for long enough
	// to declare the node dead: the router stops preferring the node
	// (reads and required write acks skip it) while the detector keeps
	// probing at full rate.
	Suspect
	// Dead means probes failed past the suspicion budget: the node is
	// routed around entirely and probed at a backed-off rate until it
	// answers again.
	Dead
)

// String renders the state for logs and tables.
func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return "unknown"
	}
}

// Config parameterizes a Detector. Zero fields take defaults.
type Config struct {
	// Interval is the per-node probe period while the node is alive or
	// suspect (default 100ms).
	Interval time.Duration
	// Timeout bounds one probe round trip (default 250ms). A probe that
	// has not answered by then counts as a failure.
	Timeout time.Duration
	// SuspectAfter is how many consecutive probe failures move an alive
	// node to suspect (default 2).
	SuspectAfter int
	// DeadAfter is how many further consecutive failures move a suspect
	// node to dead (default 2) — so a node is declared dead after
	// SuspectAfter+DeadAfter straight failures.
	DeadAfter int
	// MaxBackoff caps the probe back-off for dead nodes (default
	// 16×Interval). Dead nodes keep being probed — that is how a
	// rejoining node is noticed — just not at full rate.
	MaxBackoff time.Duration
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 250 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 2
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 16 * c.Interval
	}
	return c
}

// ProbeFunc checks one node's liveness: nil means the node answered, any
// error means it did not. The context carries the probe timeout; the
// function must return once it fires.
type ProbeFunc func(ctx context.Context, node string) error

// member is the per-node detector state.
type member struct {
	state    State
	fails    int           // consecutive probe failures
	inFlight bool          // a probe for this node is outstanding
	backoff  time.Duration // current dead-node probe gap
	next     time.Time     // next probe due
}

// Detector drives the per-node heartbeat probes and the
// alive→suspect→dead state machine. Probes run concurrently (one
// outstanding probe per node at most), so one hung node never delays the
// detection of another. State changes are delivered through the onChange
// callback, in order per node.
type Detector struct {
	cfg      Config
	probe    ProbeFunc
	onChange func(node string, s State)

	mu    sync.Mutex
	nodes map[string]*member

	start  sync.Once
	stopMu sync.Once
	stop   chan struct{}
	wg     sync.WaitGroup
}

// NewDetector builds a detector over probe; onChange (optional) fires on
// every state transition, outside the detector's lock and strictly
// ordered per node. Call Start to begin probing.
func NewDetector(cfg Config, probe ProbeFunc, onChange func(node string, s State)) *Detector {
	return &Detector{
		cfg:      cfg.withDefaults(),
		probe:    probe,
		onChange: onChange,
		nodes:    make(map[string]*member),
		stop:     make(chan struct{}),
	}
}

// Watch adds a node to the probe set, initially alive. Watching a node
// twice is a no-op.
func (d *Detector) Watch(node string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.nodes[node]; !ok {
		d.nodes[node] = &member{}
	}
}

// Forget drops a node from the probe set (topology removal). An
// outstanding probe for it finishes and is discarded.
func (d *Detector) Forget(node string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.nodes, node)
}

// State returns the node's current state; unwatched nodes report Alive.
func (d *Detector) State(node string) State {
	d.mu.Lock()
	defer d.mu.Unlock()
	if m, ok := d.nodes[node]; ok {
		return m.state
	}
	return Alive
}

// Counts returns how many watched nodes are suspect and dead.
func (d *Detector) Counts() (suspect, dead int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, m := range d.nodes {
		switch m.state {
		case Suspect:
			suspect++
		case Dead:
			dead++
		}
	}
	return suspect, dead
}

// Start launches the probe loop. Safe to call once; Close stops it.
func (d *Detector) Start() {
	d.start.Do(func() {
		d.wg.Add(1)
		go d.loop()
	})
}

// Close stops the probe loop and waits for in-flight probes to return
// (bounded by the probe timeout).
func (d *Detector) Close() {
	d.stopMu.Do(func() { close(d.stop) })
	d.wg.Wait()
}

// tickDivisor sets the scheduling granularity relative to the probe
// interval: ticking a few times per interval keeps due-time jitter small
// without spinning.
const tickDivisor = 4

func (d *Detector) loop() {
	defer d.wg.Done()
	tick := d.cfg.Interval / tickDivisor
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-d.stop:
			return
		case now := <-t.C:
			d.launchDue(now)
		}
	}
}

// launchDue starts one probe goroutine per node whose next probe is due
// and that has no probe outstanding.
func (d *Detector) launchDue(now time.Time) {
	d.mu.Lock()
	for name, m := range d.nodes {
		if m.inFlight || now.Before(m.next) {
			continue
		}
		m.inFlight = true
		d.wg.Add(1)
		go d.probeOne(name)
	}
	d.mu.Unlock()
}

// probeOne runs a single probe round trip and applies the result to the
// state machine. The inFlight guard is cleared only after the transition
// callback returns, so callbacks for one node never reorder.
func (d *Detector) probeOne(name string) {
	defer d.wg.Done()
	ctx, cancel := context.WithTimeout(context.Background(), d.cfg.Timeout)
	err := d.probe(ctx, name)
	cancel()

	d.mu.Lock()
	m, ok := d.nodes[name]
	if !ok {
		d.mu.Unlock()
		return // forgotten while probing
	}
	var changed State
	fire := false
	if err == nil {
		m.fails = 0
		m.backoff = 0
		m.next = time.Now().Add(d.cfg.Interval)
		if m.state != Alive {
			m.state = Alive
			changed, fire = Alive, true
		}
	} else {
		m.fails++
		switch {
		case m.state == Alive && m.fails >= d.cfg.SuspectAfter:
			m.state = Suspect
			changed, fire = Suspect, true
		case m.state == Suspect && m.fails >= d.cfg.SuspectAfter+d.cfg.DeadAfter:
			m.state = Dead
			changed, fire = Dead, true
		}
		gap := d.cfg.Interval
		if m.state == Dead {
			// Back off probes to a dead node — it is already routed
			// around, so the only job left is noticing a rejoin.
			if m.backoff < d.cfg.Interval {
				m.backoff = d.cfg.Interval
			} else if m.backoff < d.cfg.MaxBackoff {
				m.backoff *= 2
				if m.backoff > d.cfg.MaxBackoff {
					m.backoff = d.cfg.MaxBackoff
				}
			}
			gap = m.backoff
		}
		m.next = time.Now().Add(gap)
	}
	d.mu.Unlock()

	if fire && d.onChange != nil {
		d.onChange(name, changed)
	}

	d.mu.Lock()
	if m, ok := d.nodes[name]; ok {
		m.inFlight = false
	}
	d.mu.Unlock()
}
