package minos

import (
	"github.com/minoskv/minos/internal/core"
	"github.com/minoskv/minos/internal/harness"
	"github.com/minoskv/minos/internal/simsys"
)

// Deterministic evaluation: the discrete-event twin of the live server.
// Simulate runs one configuration; the Figure/Table functions regenerate
// the paper's evaluation (see EXPERIMENTS.md for measured-vs-paper).

// SimDesign selects the simulated architecture.
type SimDesign = simsys.Design

// Simulated designs (the simulator and live server share semantics but
// keep separate enumerations; see DESIGN.md).
const (
	SimMinos SimDesign = simsys.Minos
	SimHKH   SimDesign = simsys.HKH
	SimSHO   SimDesign = simsys.SHO
	SimHKHWS SimDesign = simsys.HKHWS
)

// SimConfig parameterizes one simulated run.
type SimConfig = simsys.Config

// SimResult is a simulated run's measurements: throughput, latency
// summaries overall and per size class, NIC utilization, per-core load,
// and controller traces.
type SimResult = simsys.Result

// Simulate executes one deterministic full-system simulation.
func Simulate(cfg SimConfig) (SimResult, error) { return simsys.Run(cfg) }

// CostFunc assigns a processing cost to a request by item size; the
// controller allocates small cores proportionally to the small share of
// total cost (§3).
type CostFunc = core.CostFunc

// The cost functions §3 names. CostPackets (network frames handled) is
// the paper's default; CostConstant is size-blind and exists for the
// ablation benchmarks.
var (
	CostPackets       CostFunc = core.PacketCost
	CostBytes         CostFunc = core.ByteCost
	CostBasePlusBytes CostFunc = core.BasePlusByteCost
	CostConstant      CostFunc = core.ConstantCost
)

// ExperimentOptions configures the figure/table harness runs.
type ExperimentOptions = harness.Options

// Experiment scales.
const (
	// ScaleQuick keeps each figure to seconds (benchmarks, CI).
	ScaleQuick = harness.Quick
	// ScaleFull is the EXPERIMENTS.md scale (minutes per figure).
	ScaleFull = harness.Full
)

// ExperimentTable is a printable/CSV-exportable experiment rendering.
type ExperimentTable = harness.Table

// Experiment regenerators, one per table/figure of the paper. Each
// returns a typed result; call its Table method for printing or export.
var (
	Figure1  = harness.Figure1
	Figure2  = harness.Figure2
	Table1   = harness.Table1
	Figure3  = harness.Figure3
	Figure4  = harness.Figure4
	Figure5  = harness.Figure5
	Figure6  = harness.Figure6
	Figure7  = harness.Figure7
	Figure8  = harness.Figure8
	Figure9  = harness.Figure9
	Figure10 = harness.Figure10
)
