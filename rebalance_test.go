package minos_test

// Live coverage for the traffic-aware rebalancer (DESIGN.md §11) and
// the replica-aware migration it shares with AddNode/RemoveNode. The
// detector and planner are golden-tested in internal/rebalance; this
// file exercises the execution path against real fabric fleets: hot
// arcs moving live under traffic, a destination dying mid-stream (the
// epoch must fail and leave the ring unchanged), rebalancing racing
// topology churn, and — the replica-migration regression — the old
// owner of migrated keys being killed right after a topology change
// with every key still readable at R=2. The TestChaos* names ride the
// CI `-run Chaos` -race step.

import (
	"context"
	"fmt"
	"testing"
	"time"

	minos "github.com/minoskv/minos"
)

// rebalanceOpts is the controller tuning these tests drive by hand: the
// epoch loop is parked (an hour) so every epoch is forced through
// Rebalance, and coarse vnodes make individual arcs carry enough of a
// hot node's traffic that a bounded plan visibly rebalances.
func rebalanceOpts() []minos.ClusterOption {
	return []minos.ClusterOption{
		minos.WithVNodes(8),
		minos.WithRebalancing(minos.RebalanceConfig{
			Epoch:  time.Hour,
			MinOps: 64,
		}),
	}
}

// keysOwnedBy returns the subset of keys the current ring routes to
// node name.
func keysOwnedBy(cl *minos.Cluster, keys [][]byte, name string) [][]byte {
	var out [][]byte
	for _, k := range keys {
		if cl.NodeFor(k) == name {
			out = append(out, k)
		}
	}
	return out
}

// TestRebalanceMovesHotArcsLive is the happy path: all read traffic
// aimed at one node must trip the skew detector, and the forced epoch
// must move arcs off it — live, with every key readable before and
// after and the fleet still holding each key exactly once.
func TestRebalanceMovesHotArcsLive(t *testing.T) {
	ctx := context.Background()
	cl, _, servers := testCluster(t, 4, 1, rebalanceOpts()...)

	const numKeys = 400
	keys := make([][]byte, numKeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("reb:%05d", i))
		if err := cl.Put(ctx, keys[i], []byte(fmt.Sprintf("val-%05d", i))); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}

	// Drain the (balanced) preload traffic: this epoch must not plan.
	res, err := cl.Rebalance(ctx)
	if err != nil {
		t.Fatalf("drain epoch: %v", err)
	}
	if res.Moves != 0 {
		t.Fatalf("balanced preload epoch planned %d moves (skew %.2f)", res.Moves, res.Skew)
	}

	// Flash crowd: every read goes to one node's keys.
	hot := cl.NodeFor(keys[0])
	hotKeys := keysOwnedBy(cl, keys, hot)
	if len(hotKeys) < 8 {
		t.Fatalf("node %s owns only %d of %d keys", hot, len(hotKeys), numKeys)
	}
	for r := 0; r < 40; r++ {
		for _, k := range hotKeys {
			if _, err := cl.Get(ctx, k); err != nil {
				t.Fatalf("hot Get: %v", err)
			}
		}
	}

	res, err = cl.Rebalance(ctx)
	if err != nil {
		t.Fatalf("hot epoch: %v", err)
	}
	if res.Moves == 0 {
		t.Fatalf("single-node flash crowd planned no moves (skew %.2f)", res.Skew)
	}
	if res.Skew < 2 {
		t.Errorf("measured skew %.2f with all traffic on one of 4 nodes; want > 2", res.Skew)
	}
	if res.ProjectedSkew >= res.Skew {
		t.Errorf("projected skew %.2f did not improve on measured %.2f", res.ProjectedSkew, res.Skew)
	}
	if res.KeysStreamed == 0 {
		t.Error("arcs moved but no keys streamed")
	}

	// The moves actually changed routing: some hot key answers to a new
	// owner now.
	moved := 0
	for _, k := range hotKeys {
		if cl.NodeFor(k) != hot {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no hot key changed owner after the rebalance")
	}

	// Nothing lost, nothing duplicated, everything readable.
	for i, k := range keys {
		v, err := cl.Get(ctx, k)
		if err != nil || string(v) != fmt.Sprintf("val-%05d", i) {
			t.Fatalf("Get %q after rebalance = %q, %v", k, v, err)
		}
	}
	if got := clusterItems(servers); got != numKeys {
		t.Fatalf("fleet holds %d items after rebalance, want %d", got, numKeys)
	}

	st := cl.Stats().Rebalance
	if !st.Enabled || st.Epochs < 2 || st.Plans != 1 {
		t.Fatalf("RebalanceStats = %+v; want enabled, >=2 epochs, 1 plan", st)
	}
	if st.Moves != uint64(res.Moves) || st.ArcsMoved != res.Moves || st.KeysStreamed != uint64(res.KeysStreamed) {
		t.Fatalf("RebalanceStats counters %+v disagree with result %+v", st, res)
	}
}

// TestChaosRebalanceDestinationDies kills the node a rebalance is about
// to stream keys onto. The epoch must fail, roll its copies back and
// leave the ring unchanged — and once the node is replaced, the next
// forced epoch must succeed.
func TestChaosRebalanceDestinationDies(t *testing.T) {
	ctx := context.Background()
	opts := append(rebalanceOpts(),
		minos.WithNodeOptions(minos.WithDeadline(50*time.Millisecond)))
	cl, fc, servers := testCluster(t, 4, 1, opts...)

	const numKeys = 200
	keys := make([][]byte, numKeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("rebkill:%05d", i))
		if err := cl.Put(ctx, keys[i], []byte(fmt.Sprintf("val-%05d", i))); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if _, err := cl.Rebalance(ctx); err != nil { // drain the preload epoch
		t.Fatalf("drain epoch: %v", err)
	}

	// Skew the epoch: a flood on n0's keys, a trickle on n1 and n2, and
	// nothing at all on n3 — making n3 the unambiguous coldest node, the
	// planner's first destination.
	hot, victim := "n0", "n3"
	hotKeys := keysOwnedBy(cl, keys, hot)
	for r := 0; r < 40; r++ {
		for _, k := range hotKeys {
			if _, err := cl.Get(ctx, k); err != nil {
				t.Fatalf("hot Get: %v", err)
			}
		}
	}
	for _, name := range []string{"n1", "n2"} {
		warm := keysOwnedBy(cl, keys, name)
		for i := 0; i < 5 && i < len(warm); i++ {
			if _, err := cl.Get(ctx, warm[i]); err != nil {
				t.Fatalf("warm Get: %v", err)
			}
		}
	}

	// Kill the destination cold — no failure detector at R=1, so the
	// controller finds out the hard way, mid-stream. A forced epoch may
	// already have rebalanced the preload traffic; the failed one must
	// leave those counters exactly where they were.
	before := cl.Stats().Rebalance
	servers[victim].Stop()
	if _, err := cl.Rebalance(ctx); err == nil {
		t.Fatal("rebalance streamed onto a dead node and reported success")
	}
	st := cl.Stats().Rebalance
	if st.Failed != before.Failed+1 {
		t.Fatalf("Failed = %d after a dead-destination epoch, want %d", st.Failed, before.Failed+1)
	}
	if st.ArcsMoved != before.ArcsMoved || st.Moves != before.Moves {
		t.Fatalf("ring changed under a failed epoch: %+v (before: %+v)", st, before)
	}

	// Serving continues on the survivors; routing is untouched.
	for i, k := range keys {
		if cl.NodeFor(k) == victim {
			continue // R=1: the victim's own keys die with it
		}
		v, err := cl.Get(ctx, k)
		if err != nil || string(v) != fmt.Sprintf("val-%05d", i) {
			t.Fatalf("Get %q after failed rebalance = %q, %v", k, v, err)
		}
	}

	// Replace the victim (fresh server on the same fabric node, same ring
	// identity) and re-skew: the controller must recover on its own.
	srv, err := minos.NewServer(fc.Node(3).Server(),
		minos.WithDesign(minos.DesignMinos), minos.WithCores(1))
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)
	servers[victim] = srv

	if _, err := cl.Rebalance(ctx); err != nil { // drain the recovery-read epoch
		t.Fatalf("drain epoch: %v", err)
	}
	for r := 0; r < 40; r++ {
		for _, k := range hotKeys {
			if _, err := cl.Get(ctx, k); err != nil {
				t.Fatalf("re-skew Get: %v", err)
			}
		}
	}
	res, err := cl.Rebalance(ctx)
	if err != nil {
		t.Fatalf("rebalance after node replacement: %v", err)
	}
	if res.Moves == 0 {
		t.Fatalf("recovered cluster planned no moves (skew %.2f)", res.Skew)
	}
	for _, k := range hotKeys {
		v, err := cl.Get(ctx, k)
		if err != nil || len(v) == 0 {
			t.Fatalf("hot Get %q after recovery = %q, %v", k, v, err)
		}
	}
	if st := cl.Stats().Rebalance; st.Failed != before.Failed+1 {
		t.Fatalf("Failed = %d after recovery, want still %d", st.Failed, before.Failed+1)
	}
}

// TestChaosRebalanceRacesTopology runs the epoch loop hot (5ms epochs,
// skewed read load) while nodes join and leave the ring. Epochs and
// topology changes serialize on the same lock, so under -race this
// pins the absence of ring/recorder races — and at the end the fleet
// must hold every key exactly once, wherever the churn left it.
func TestChaosRebalanceRacesTopology(t *testing.T) {
	ctx := context.Background()
	cl, fc, servers := testCluster(t, 4, 1,
		minos.WithVNodes(8),
		minos.WithRebalancing(minos.RebalanceConfig{
			Epoch:  5 * time.Millisecond,
			MinOps: 32,
		}))

	const numKeys = 200
	keys := make([][]byte, numKeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("rebrace:%05d", i))
		if err := cl.Put(ctx, keys[i], []byte(fmt.Sprintf("val-%05d", i))); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	hotKeys := keysOwnedBy(cl, keys, cl.NodeFor(keys[0]))

	// Skewed read load for the whole churn window, so epochs keep
	// finding something to move.
	stop := make(chan struct{})
	loadDone := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				loadDone <- nil
				return
			default:
			}
			for _, k := range hotKeys {
				if _, err := cl.Get(ctx, k); err != nil {
					loadDone <- fmt.Errorf("Get %q under churn: %w", k, err)
					return
				}
			}
		}
	}()

	// Churn: a transient node joins and leaves, three times, while the
	// epoch loop fires every few milliseconds.
	for round := 0; round < 3; round++ {
		fab, idx := fc.Grow()
		srv, err := minos.NewServer(fc.Node(idx).Server(),
			minos.WithDesign(minos.DesignMinos), minos.WithCores(1))
		if err != nil {
			t.Fatal(err)
		}
		srv.Start()
		name := fmt.Sprintf("churn-%d", round)
		if _, err := cl.AddNode(ctx, minos.ClusterNode{Name: name, Transport: fab.NewClient(), Server: srv}); err != nil {
			t.Fatalf("AddNode %s: %v", name, err)
		}
		time.Sleep(20 * time.Millisecond) // a few epochs against the grown ring
		if _, err := cl.RemoveNode(ctx, name); err != nil {
			t.Fatalf("RemoveNode %s: %v", name, err)
		}
		srv.Stop()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	if err := <-loadDone; err != nil {
		t.Fatal(err)
	}

	// The dust settles: every key readable, each held exactly once.
	for i, k := range keys {
		v, err := cl.Get(ctx, k)
		if err != nil || string(v) != fmt.Sprintf("val-%05d", i) {
			t.Fatalf("Get %q after churn = %q, %v", k, v, err)
		}
	}
	if got := clusterItems(servers); got != numKeys {
		t.Fatalf("fleet holds %d items after churn, want %d", got, numKeys)
	}
	if st := cl.Stats().Rebalance; st.Epochs == 0 {
		t.Fatal("epoch loop never fired during the churn window")
	}
}

// TestChaosKillOldOwnerAfterAddNode is the replica-migration regression
// test: growing an R=2 cluster must restream every *replica* placement
// the new ring shifts, not just the keys whose primary changed. Killing
// any pre-existing node right after the join then leaves at least one
// live copy of every key — before the fix, keys whose secondary copy
// moved onto the new node were readable only from their old primary,
// and died with it.
func TestChaosKillOldOwnerAfterAddNode(t *testing.T) {
	ctx := context.Background()
	cl, fc, servers := testCluster(t, 6, 1, chaosDetection()...)

	const numKeys = 300
	key := func(i int) []byte { return []byte(fmt.Sprintf("growkill:%05d", i)) }
	val := func(i int) string { return fmt.Sprintf("val-%05d", i) }
	for i := 0; i < numKeys; i++ {
		if err := cl.Put(ctx, key(i), []byte(val(i))); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}

	// Grow: a 7th node joins; every key's new replica set must be fully
	// materialized when AddNode returns.
	fab, idx := fc.Grow()
	srv, err := minos.NewServer(fc.Node(idx).Server(),
		minos.WithDesign(minos.DesignMinos), minos.WithCores(1))
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)
	moved, err := cl.AddNode(ctx, minos.ClusterNode{Name: "n6", Transport: fab.NewClient(), Server: srv})
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if moved == 0 {
		t.Fatal("AddNode moved no keys")
	}
	servers["n6"] = srv

	// Exactly R copies of every key, wherever the new ring places them:
	// stale placements retired, shifted replicas restreamed.
	if got := clusterItems(servers); got != 2*numKeys {
		t.Fatalf("fleet holds %d items after R=2 AddNode, want %d", got, 2*numKeys)
	}

	// Kill an old owner cold, right after the migration.
	servers["n1"].Stop()
	delete(servers, "n1")

	// Every key must survive: its other replica — on the new node, for
	// the keys whose secondary placement just moved there — serves it.
	for i := 0; i < numKeys; i++ {
		v, err := cl.Get(ctx, key(i))
		if err != nil || string(v) != val(i) {
			t.Fatalf("Get %d after killing old owner = %q, %v", i, v, err)
		}
	}
}

// TestChaosKillOldOwnerAfterRemoveNode is the shrink-side twin: at R=2,
// removing a node shifts replica placements on the survivors, and all
// of them must be restreamed before the retiring node disappears.
// Killing another node right after the removal must not lose a key.
func TestChaosKillOldOwnerAfterRemoveNode(t *testing.T) {
	ctx := context.Background()
	cl, _, servers := testCluster(t, 6, 1, chaosDetection()...)

	const numKeys = 300
	key := func(i int) []byte { return []byte(fmt.Sprintf("shrinkkill:%05d", i)) }
	val := func(i int) string { return fmt.Sprintf("val-%05d", i) }
	for i := 0; i < numKeys; i++ {
		if err := cl.Put(ctx, key(i), []byte(val(i))); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}

	moved, err := cl.RemoveNode(ctx, "n5")
	if err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	if moved == 0 {
		t.Fatal("RemoveNode moved no keys")
	}
	servers["n5"].Stop()
	delete(servers, "n5")

	if got := clusterItems(servers); got != 2*numKeys {
		t.Fatalf("fleet holds %d items after R=2 RemoveNode, want %d", got, 2*numKeys)
	}

	servers["n2"].Stop()
	delete(servers, "n2")
	for i := 0; i < numKeys; i++ {
		v, err := cl.Get(ctx, key(i))
		if err != nil || string(v) != val(i) {
			t.Fatalf("Get %d after killing survivor = %q, %v", i, v, err)
		}
	}
}
