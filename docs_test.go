package minos_test

// Documentation gates, run by the CI docs job:
//
//   - TestDocsSnippetsCompile extracts every fenced ```go block from the
//     user-facing markdown files and builds them, so documented snippets
//     cannot rot as the API moves.
//   - TestDocsRelativeLinks checks that every relative markdown link
//     points at a file that exists.
//   - TestDocsPackageDocCoverage fails if any non-main package lacks a
//     package comment, keeping `go doc` useful everywhere.
//
// Snippets are compiled as function bodies with a small prologue of
// pre-declared free identifiers (srv, c, cl, fabric, ctx, key, keys,
// err) so a block can continue from context an earlier block
// established, the way prose examples read. Everything a block declares
// itself must be used — that is the rot the gate exists to catch.

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// snippetDocs are the markdown files whose ```go blocks must compile.
var snippetDocs = []string{"README.md", "MIGRATION.md", "DESIGN.md", "EXPERIMENTS.md"}

var goFence = regexp.MustCompile("(?ms)^```go\n(.*?)^```")

func TestDocsSnippetsCompile(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go binary not found: %v", err)
	}
	var b strings.Builder
	b.WriteString("// Code generated from markdown by TestDocsSnippetsCompile; do not edit.\n")
	b.WriteString("package docsnippets\n\nimport (\n")
	var blocks []string
	var names []string
	for _, doc := range snippetDocs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("reading %s: %v", doc, err)
		}
		for i, m := range goFence.FindAllStringSubmatch(string(data), -1) {
			blocks = append(blocks, m[1])
			names = append(names, fmt.Sprintf("%s block %d", doc, i+1))
		}
	}
	if len(blocks) == 0 {
		t.Fatal("no ```go blocks found; the docs lost their examples")
	}
	all := strings.Join(blocks, "\n")
	// Imports the prologue always needs, then the ones any block uses.
	b.WriteString("\tminos \"github.com/minoskv/minos\"\n")
	b.WriteString("\t\"context\"\n")
	for imp, marker := range map[string]string{
		"\t\"errors\"\n": "errors.",
		"\t\"fmt\"\n":    "fmt.",
		"\t\"log\"\n":    "log.",
		"\t\"time\"\n":   "time.",
		"\t\"github.com/minoskv/minos/experiment\"\n": "experiment.",
	} {
		if strings.Contains(all, marker) {
			b.WriteString(imp)
		}
	}
	b.WriteString(")\n\n")
	for i, block := range blocks {
		fmt.Fprintf(&b, "// %s\nfunc snippet%d() {\n", names[i], i)
		b.WriteString("\tvar (\n\t\tfabric *minos.Fabric\n\t\tsrv *minos.Server\n\t\tc *minos.Client\n\t\tcl *minos.Cluster\n\t\tctx context.Context\n\t\tkey []byte\n\t\tkeys [][]byte\n\t\terr error\n\t)\n")
		b.WriteString("\t_, _, _, _, _, _, _, _ = fabric, srv, c, cl, ctx, key, keys, err\n\t{\n")
		for _, line := range strings.Split(strings.TrimRight(block, "\n"), "\n") {
			b.WriteString("\t\t" + line + "\n")
		}
		b.WriteString("\t}\n}\n\n")
	}
	b.WriteString("var _ = []func(){")
	for i := range blocks {
		fmt.Fprintf(&b, "snippet%d, ", i)
	}
	b.WriteString("}\n")

	dir, err := os.MkdirTemp(".", ".docsnippets-")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := os.WriteFile(filepath.Join(dir, "snippets.go"), []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(goBin, "build", "./"+dir+"/").CombinedOutput()
	if err != nil {
		t.Fatalf("documentation snippets do not compile:\n%s\n\ngenerated source:\n%s", out, numbered(b.String()))
	}
}

// numbered prefixes each line with its number, for readable failures.
func numbered(src string) string {
	lines := strings.Split(src, "\n")
	for i := range lines {
		lines[i] = fmt.Sprintf("%4d  %s", i+1, lines[i])
	}
	return strings.Join(lines, "\n")
}

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func TestDocsRelativeLinks(t *testing.T) {
	docs, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range docs {
		if doc == "SNIPPETS.md" {
			// Quoted exemplar code from other repositories; its links
			// point into those repos, not this one.
			continue
		}
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#") // drop the anchor
			if _, err := os.Stat(filepath.Join(filepath.Dir(doc), target)); err != nil {
				t.Errorf("%s links to %q, which does not exist", doc, m[1])
			}
		}
	}
}

func TestDocsPackageDocCoverage(t *testing.T) {
	var undocumented []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != "." && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, path, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			return err
		}
		for pkgName, pkg := range pkgs {
			if pkgName == "main" {
				// Commands document themselves via their own comment;
				// the gate is about library go doc output.
				continue
			}
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && len(f.Doc.List) > 0 {
					documented = true
					break
				}
			}
			if !documented {
				undocumented = append(undocumented, path+" (package "+pkgName+")")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(undocumented) > 0 {
		t.Fatalf("packages without package documentation (add a doc.go):\n  %s",
			strings.Join(undocumented, "\n  "))
	}
}
