package minos_test

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"testing"

	minos "github.com/minoskv/minos"
)

// RESP front-end round-trip benchmarks over real loopback TCP, one
// blocking command at a time. The client side pre-encodes its commands
// and reads replies into reused buffers, so allocs/op measures the
// server's RESP hot path (parse → dispatch → reply) on top of the
// datapath — cmd/benchgate ratchets it alongside the Live/Wire
// benchmarks: any allocs/op increase fails CI.

// benchRESP boots a single-node server with a RESP listener and returns
// a connected raw TCP client.
func benchRESP(b *testing.B) (net.Conn, *bufio.Reader, func()) {
	b.Helper()
	fab := minos.NewFabric(1)
	srv, err := minos.NewServer(fab.Server(), minos.WithDesign(minos.DesignMinos), minos.WithCores(1))
	if err != nil {
		b.Fatal(err)
	}
	srv.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Stop()
		b.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeRESP(ln)
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		ln.Close()
		<-done
		srv.Stop()
		b.Fatal(err)
	}
	return nc, bufio.NewReader(nc), func() {
		nc.Close()
		ln.Close()
		<-done
		srv.Stop()
	}
}

func BenchmarkRESPGetRoundTrip(b *testing.B) {
	nc, br, stop := benchRESP(b)
	defer stop()

	set := []byte("*3\r\n$3\r\nSET\r\n$9\r\nbench-key\r\n$128\r\n" + string(make([]byte, 128)) + "\r\n")
	if _, err := nc.Write(set); err != nil {
		b.Fatal(err)
	}
	if line, err := br.ReadString('\n'); err != nil || line != "+OK\r\n" {
		b.Fatal(line, err)
	}

	get := []byte("*2\r\n$3\r\nGET\r\n$9\r\nbench-key\r\n")
	// "$128\r\n" + 128 bytes + "\r\n": the reply is fixed-size, so one
	// ReadFull per op keeps the client allocation-free.
	reply := make([]byte, len("$128\r\n")+128+2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nc.Write(get); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(br, reply); err != nil {
			b.Fatal(err)
		}
		if !bytes.HasPrefix(reply, []byte("$128\r\n")) {
			b.Fatalf("reply %q", reply[:6])
		}
	}
}

func BenchmarkRESPSetRoundTrip(b *testing.B) {
	nc, br, stop := benchRESP(b)
	defer stop()

	set := []byte("*3\r\n$3\r\nSET\r\n$9\r\nbench-key\r\n$128\r\n" + string(make([]byte, 128)) + "\r\n")
	reply := make([]byte, len("+OK\r\n"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nc.Write(set); err != nil {
			b.Fatal(err)
		}
		if _, err := io.ReadFull(br, reply); err != nil {
			b.Fatal(err)
		}
		if !bytes.Equal(reply, []byte("+OK\r\n")) {
			b.Fatalf("reply %q", reply)
		}
	}
}
