package minos_test

// Contract tests for the cache semantics of API v1: TTL expiry (lazy on
// read and via the epoch sweep), memory-capped eviction under pressure,
// the ErrEvicted / ErrNotFound distinction, and the monotone cache
// counters in Snapshot — end-to-end on both transports. CI runs these
// under -race; the in-flight-reads test is specifically a race-detector
// probe of the eviction path.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	minos "github.com/minoskv/minos"
)

// startCacheServer boots a design over a fabric with the given options
// appended (memory limit, epoch) and returns a connected client.
func startCacheServer(t *testing.T, design minos.Design, cores int, extra ...minos.ServerOption) (*minos.Server, *minos.Client) {
	t.Helper()
	fabric := minos.NewFabric(cores)
	opts := append([]minos.ServerOption{
		minos.WithDesign(design), minos.WithCores(cores),
	}, extra...)
	srv, err := minos.NewServer(fabric.Server(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(srv.Stop)
	queues := cores
	if design == minos.DesignSHO {
		queues = 1
	}
	c, err := minos.NewClient(fabric.NewClient(),
		minos.WithQueues(queues), minos.WithSeed(1), minos.WithDeadline(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

// ttlRoundTrip is the TTL contract: a PutTTL'd key hits before its TTL,
// and after it misses with ErrEvicted — which must also satisfy
// errors.Is(err, ErrNotFound) — while a never-stored key misses with
// plain ErrNotFound and NOT ErrEvicted.
func ttlRoundTrip(t *testing.T, ctx context.Context, c *minos.Client, key []byte) {
	t.Helper()
	// The pre-expiry read uses its own long-lived key: a TTL generous
	// enough that a stalled CI runner cannot expire it between the PutTTL
	// ack and the Get.
	longKey := append(append([]byte(nil), key...), "-long"...)
	if err := c.PutTTL(ctx, longKey, []byte("transient"), time.Minute); err != nil {
		t.Fatalf("put-ttl: %v", err)
	}
	if v, err := c.Get(ctx, longKey); err != nil || string(v) != "transient" {
		t.Fatalf("get before expiry = %q, %v", v, err)
	}
	// The expiry check polls rather than sleeping a fixed interval: the
	// short key must turn into an ErrEvicted miss once its TTL passes.
	if err := c.PutTTL(ctx, key, []byte("transient"), 40*time.Millisecond); err != nil {
		t.Fatalf("put-ttl: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	var err error
	for {
		if _, err = c.Get(ctx, key); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("key never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !errors.Is(err, minos.ErrNotFound) {
		t.Fatalf("get after expiry = %v, want ErrNotFound", err)
	}
	if !errors.Is(err, minos.ErrEvicted) {
		t.Fatalf("get after expiry = %v, want ErrEvicted", err)
	}
	_, err = c.Get(ctx, []byte("never-stored"))
	if !errors.Is(err, minos.ErrNotFound) || errors.Is(err, minos.ErrEvicted) {
		t.Fatalf("get of absent key = %v, want plain ErrNotFound", err)
	}
}

func TestTTLExpiryFabricAllDesigns(t *testing.T) {
	ctx := context.Background()
	for _, design := range []minos.Design{
		minos.DesignMinos, minos.DesignHKH, minos.DesignSHO, minos.DesignHKHWS,
	} {
		t.Run(design.String(), func(t *testing.T) {
			// A one-hour epoch keeps the sweep out of the way, so the
			// read is guaranteed to observe the expired item lazily —
			// the ErrEvicted path.
			_, c := startCacheServer(t, design, 4, minos.WithEpoch(time.Hour))
			ttlRoundTrip(t, ctx, c, []byte("ttl-k"))
		})
	}
}

func TestTTLExpiryUDP(t *testing.T) {
	ctx := context.Background()
	const cores, port = 2, 39400
	tr, err := minos.NewUDPServer("127.0.0.1", port, cores)
	if err != nil {
		t.Skipf("cannot bind UDP: %v", err)
	}
	srv, err := minos.NewServer(tr,
		minos.WithDesign(minos.DesignMinos), minos.WithCores(cores), minos.WithEpoch(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	t.Cleanup(func() { srv.Stop(); tr.Close() })
	ct, err := minos.NewUDPClient("127.0.0.1", port)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ct.Close() })
	c, err := minos.NewClient(ct,
		minos.WithQueues(cores), minos.WithSeed(3), minos.WithDeadline(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	ttlRoundTrip(t, ctx, c, []byte("udp-ttl-k"))
}

func TestEpochSweepReclaimsExpired(t *testing.T) {
	ctx := context.Background()
	srv, c := startCacheServer(t, minos.DesignMinos, 2, minos.WithEpoch(20*time.Millisecond))
	const n = 64
	for i := 0; i < n; i++ {
		if err := c.PutTTL(ctx, []byte(fmt.Sprintf("sweep-%02d", i)), []byte("v"), 30*time.Millisecond); err != nil {
			t.Fatalf("put-ttl %d: %v", i, err)
		}
	}
	// No reads: only the epoch-aligned sweep can reclaim these. Poll the
	// snapshot until it has (CI machines can stall timers).
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := srv.Snapshot()
		if snap.Items == 0 && snap.Expired >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep did not reclaim: %d items live, %d expired", snap.Items, snap.Expired)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestMemoryLimitUnderPressureAllDesigns(t *testing.T) {
	ctx := context.Background()
	const limit = 512 << 10
	val := make([]byte, 2048)
	maxItem := int64(len(val)) + 16 + 96 // value + key + per-item overhead
	for _, design := range []minos.Design{
		minos.DesignMinos, minos.DesignHKH, minos.DesignSHO, minos.DesignHKHWS,
	} {
		t.Run(design.String(), func(t *testing.T) {
			srv, c := startCacheServer(t, design, 2, minos.WithMemoryLimit(limit))
			// Write 4x the memory limit.
			writes := int(4 * limit / maxItem)
			for i := 0; i < writes; i++ {
				if err := c.Put(ctx, []byte(fmt.Sprintf("%s-%06d", design, i)), val); err != nil {
					t.Fatalf("put %d: %v", i, err)
				}
			}
			snap := srv.Snapshot()
			if snap.MemBytes > limit+maxItem {
				t.Fatalf("MemBytes = %d, want <= limit %d + one item %d", snap.MemBytes, limit, maxItem)
			}
			if snap.Evicted == 0 {
				t.Fatal("no evictions under 4x memory pressure")
			}
			if snap.Items == 0 {
				t.Fatal("eviction emptied the store")
			}
			if snap.MemoryLimit != limit {
				t.Fatalf("MemoryLimit = %d, want %d", snap.MemoryLimit, limit)
			}
		})
	}
}

func TestEvictionNeverBreaksInFlightReads(t *testing.T) {
	// Writers force continuous eviction while readers verify every value
	// they see is intact: the immutable-item contract means an in-flight
	// value can never be freed or recycled under a reader. -race guards
	// the memory claims; the byte checks guard recycling bugs.
	ctx := context.Background()
	srv, c := startCacheServer(t, minos.DesignMinos, 4, minos.WithMemoryLimit(256<<10))
	const writers, keysPerWriter = 3, 200
	value := func(w int) []byte {
		v := make([]byte, 1024)
		for i := range v {
			v[i] = byte('a' + w)
		}
		return v
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := value(w)
			for round := 0; round < 10; round++ {
				for i := 0; i < keysPerWriter; i++ {
					if err := c.Put(ctx, []byte(fmt.Sprintf("w%d-%03d", w, i)), v); err != nil {
						t.Errorf("put: %v", err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				w := i % writers
				v, err := c.Get(ctx, []byte(fmt.Sprintf("w%d-%03d", w, i%keysPerWriter)))
				if err != nil {
					continue // evicted: a legitimate miss
				}
				for _, b := range v {
					if b != byte('a'+w) {
						t.Errorf("reader %d saw corrupted value", r)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	if snap := srv.Snapshot(); snap.Evicted == 0 {
		t.Fatal("test exerted no eviction pressure")
	}
}

func TestSnapshotCacheCountersMonotone(t *testing.T) {
	ctx := context.Background()
	srv, c := startCacheServer(t, minos.DesignMinos, 2,
		minos.WithMemoryLimit(128<<10), minos.WithEpoch(20*time.Millisecond))
	val := make([]byte, 512)
	var last minos.Snapshot
	for i := 0; i < 400; i++ {
		key := []byte(fmt.Sprintf("mono-%04d", i))
		if err := c.PutTTL(ctx, key, val, 50*time.Millisecond); err != nil {
			t.Fatalf("put: %v", err)
		}
		_, _ = c.Get(ctx, key)
		_, _ = c.Get(ctx, []byte(fmt.Sprintf("absent-%04d", i)))
		snap := srv.Snapshot()
		if snap.Hits < last.Hits || snap.Misses < last.Misses ||
			snap.Expired < last.Expired || snap.Evicted < last.Evicted {
			t.Fatalf("counters went backwards:\n%+v ->\n%+v", last, snap)
		}
		last = snap
	}
	if last.Hits == 0 || last.Misses == 0 {
		t.Fatalf("expected hit and miss traffic, got %+v", last)
	}
	if hr := last.HitRatio(); hr <= 0 || hr >= 1 {
		t.Fatalf("HitRatio = %v, want in (0, 1)", hr)
	}
	// Whether the cap (eviction) or the TTLs (expiry) reclaim first is a
	// timing race on a real clock; the contract is that reclaim happened
	// and was counted.
	if last.Evicted == 0 && last.Expired == 0 {
		t.Fatal("expected eviction or expiry activity under the 128 KiB cap")
	}
}
