package minos

import (
	"context"
	"errors"
	"time"

	"github.com/minoskv/minos/internal/client"
	"github.com/minoskv/minos/internal/cluster"
	"github.com/minoskv/minos/internal/kv"
	"github.com/minoskv/minos/internal/rebalance"
)

// Cluster-layer errors (see DESIGN.md §7).
var (
	// ErrNoNodes reports an operation on a cluster whose last node was
	// removed.
	ErrNoNodes = cluster.ErrNoNodes

	// ErrNodeExists rejects AddNode with a name already in the ring.
	ErrNodeExists = cluster.ErrNodeExists

	// ErrUnknownNode rejects RemoveNode of a name not in the ring.
	ErrUnknownNode = cluster.ErrUnknownNode

	// ErrNoScan reports a topology change that would need to enumerate
	// the keys of a node attached without a Server handle: such a node
	// can receive migrated keys but cannot donate them.
	ErrNoScan = cluster.ErrNoScan

	// ErrNoTTL reports a TTL query routed to a node attached without a
	// Server handle: the wire protocol has no TTL operation, so only
	// locally introspectable nodes can answer one.
	ErrNoTTL = cluster.ErrNoTTL

	// ErrRebalanceOff reports a Rebalance call on a cluster built
	// without WithRebalancing.
	ErrRebalanceOff = cluster.ErrRebalanceOff
)

// ClusterNode attaches one Minos server to a Cluster: a stable routing
// name (its identity on the consistent-hash ring), the client transport
// that reaches it, and — optionally — the in-process Server handle.
// The handle is what lets topology changes drain keys off the node
// (AddNode/RemoveNode scan the donor's store directly and stream the
// keys over the wire); a node attached without one, e.g. a genuinely
// remote server, can join and receive keys but cannot be a migration
// donor (ErrNoScan).
type ClusterNode struct {
	Name      string
	Transport ClientTransport
	Server    *Server
}

// ClusterOption configures NewCluster.
type ClusterOption func(*clusterConfig)

type clusterConfig struct {
	cfg      cluster.Config
	nodeOpts []ClientOption
}

// WithVNodes sets the virtual-node count each node contributes to the
// ring (default 256). More vnodes tighten the key-distribution skew
// across nodes at the cost of ring size; the default keeps an 8-node
// ring's arc imbalance within a few percent.
func WithVNodes(n int) ClusterOption {
	return func(c *clusterConfig) { c.cfg.VNodes = n }
}

// WithClusterSeed fixes the ring's vnode placement. Cluster clients that
// must agree on key ownership — including the same cluster reconstructed
// after a restart — use the same seed, node names and vnode count.
func WithClusterSeed(seed uint64) ClusterOption {
	return func(c *clusterConfig) { c.cfg.Seed = seed }
}

// WithNodeOptions applies client options (WithQueues, WithWindow,
// WithDeadline, ...) to every node's internal client engine, including
// nodes attached later with AddNode. Clusters are assumed homogeneous:
// give WithQueues the per-node server core count.
func WithNodeOptions(opts ...ClientOption) ClusterOption {
	return func(c *clusterConfig) { c.nodeOpts = append(c.nodeOpts, opts...) }
}

// WithReplication stores every key on r nodes — the ring owner plus r-1
// clockwise successors — and turns on the replicated datapath: writes
// need a quorum of the live replicas to acknowledge (both, at r=2, so an
// acknowledged write survives either node failing), a failure detector
// probes every node and routes around the ones that stop answering
// without any topology change, missed writes are queued as hints and
// replayed when the node returns, and reads are hedged across replicas
// (see WithHedging). r <= 1 keeps the unreplicated single-copy
// behaviour. See DESIGN.md §9 for the full contract.
func WithReplication(r int) ClusterOption {
	return func(c *clusterConfig) { c.cfg.Replicas = r }
}

// WithHedging bounds the adaptive hedge delay of replicated reads: a GET
// that has not answered within the delay — tracked at roughly the
// healthy nodes' p95 latency, clamped to [min, max] — is duplicated to a
// second replica and the first useful response wins. Hedging is on by
// default with WithReplication(r >= 2); this option only tunes the
// clamp. min <= 0 and max <= 0 keep their defaults (100µs and 10ms).
func WithHedging(min, max time.Duration) ClusterOption {
	return func(c *clusterConfig) {
		c.cfg.Hedge.Min = min
		c.cfg.Hedge.Max = max
	}
}

// WithoutHedging disables hedged reads on a replicated cluster: reads
// still fail over to another replica when the first one fails, but a
// slow response is waited out rather than raced. The hedged-vs-not
// comparison in EXPERIMENTS.md (`hedgetail`) is measured with exactly
// this toggle.
func WithoutHedging() ClusterOption {
	return func(c *clusterConfig) { c.cfg.Hedge.Disabled = true }
}

// WithFailureDetection tunes the failure detector of a replicated
// cluster: interval is the per-node probe period, timeout one probe's
// deadline. Two consecutive probe failures mark a node suspect (skipped
// by reads and by the write-ack quorum), two more mark it dead; the
// first answered probe brings it back, after its missed writes are
// replayed. Non-positive values keep the defaults (100ms and 250ms).
func WithFailureDetection(interval, timeout time.Duration) ClusterOption {
	return func(c *clusterConfig) {
		c.cfg.Probe.Interval = interval
		c.cfg.Probe.Timeout = timeout
	}
}

// RebalanceConfig tunes WithRebalancing. The zero value is a sensible
// controller: 5s epochs, a 1.6 skew trigger armed by two consecutive
// hot epochs, at most 4 arc moves per epoch.
type RebalanceConfig struct {
	// Epoch is the controller period: every epoch the traffic recorder
	// is drained and skew evaluated (default 5s).
	Epoch time.Duration
	// SkewThreshold is the max-node-load over mean-node-load ratio above
	// which an epoch counts as hot (default 1.6). 1.0 is perfect
	// balance; a single saturated node on an M-node cluster shows M.
	SkewThreshold float64
	// RestoreSkew is the projected skew at which the planner stops
	// adding moves (default halfway between 1.0 and SkewThreshold) —
	// the anti-thrash band between trigger and target.
	RestoreSkew float64
	// HotEpochs is how many consecutive hot epochs arm the trigger
	// (default 2): a one-epoch spike is ignored.
	HotEpochs int
	// MaxMoves bounds the arc moves per epoch (default 4) — the
	// move-rate budget that keeps migration traffic a sliver of serving
	// traffic.
	MaxMoves int
	// MinOps is the per-epoch traffic below which skew is not evaluated
	// (default 256): an idle cluster's ratios are noise.
	MinOps uint64
	// TopK is the hot-key sketch width (default 16).
	TopK int
	// Sample feeds every 1-in-Sample routed operation to the sketch
	// (default 8, rounded to a power of two; 1 sketches every
	// operation).
	Sample int
}

// WithRebalancing turns on the traffic-aware ring controller: every
// epoch the cluster measures per-node load from its own routing
// decisions (plus a SpaceSaving top-k hot-key sketch), and when the
// skew threshold holds for HotEpochs consecutive epochs it moves a
// bounded number of hot vnode arcs onto cold nodes — live, through the
// same key-streaming migration AddNode uses, reads served throughout.
// See DESIGN.md §11.
func WithRebalancing(cfg RebalanceConfig) ClusterOption {
	return func(c *clusterConfig) {
		c.cfg.Rebalance = &cluster.RebalanceConfig{
			Epoch: cfg.Epoch,
			Policy: rebalance.Policy{
				SkewThreshold: cfg.SkewThreshold,
				RestoreSkew:   cfg.RestoreSkew,
				HotEpochs:     cfg.HotEpochs,
				MaxMoves:      cfg.MaxMoves,
				MinOps:        cfg.MinOps,
			},
			TopK:   cfg.TopK,
			Sample: cfg.Sample,
		}
	}
}

// Cluster is the key-value client for a fleet of independent Minos
// servers: a consistent-hash ring (seeded virtual nodes) routes every
// key to exactly one node, each node is reached through its own
// pipelined engine, and MultiGet fans per-node sub-batches out
// concurrently — so the fan-out latency is the slowest node's, the
// cluster-level tail ClusterStats makes visible per node.
//
// Topology changes at runtime: AddNode and RemoveNode recompute the ring
// and stream the affected keys between nodes over the ordinary wire
// protocol, with reads served throughout. Safe for concurrent use by any
// number of goroutines.
type Cluster struct {
	c       *cluster.Cluster
	nodeCfg clientConfig

	// fronts aggregates the RESP front ends served with ServeRESP (see
	// frontend.go).
	fronts frontSet
}

// NewCluster builds a cluster client over the given nodes. Each node
// needs its own transport (as each Client does); the caller keeps
// ownership of the transports, while the cluster owns the client engines
// it builds on top of them. Node names must be unique and non-empty.
func NewCluster(nodes []ClusterNode, opts ...ClusterOption) (*Cluster, error) {
	var cc clusterConfig
	for _, opt := range opts {
		opt(&cc)
	}
	nodeCfg := clientConfig{queues: 1}
	for _, opt := range cc.nodeOpts {
		opt(&nodeCfg)
	}
	if nodeCfg.queues < 1 {
		return nil, errors.New("minos: WithNodeOptions(WithQueues) needs at least one queue")
	}
	configs := make([]cluster.NodeConfig, 0, len(nodes))
	closeBuilt := func() {
		for _, nc := range configs {
			_ = nc.Pipe.Close()
		}
	}
	for _, n := range nodes {
		nc, err := nodeConfigFor(n, nodeCfg)
		if err != nil {
			closeBuilt()
			return nil, err
		}
		configs = append(configs, nc)
	}
	c, err := cluster.New(cc.cfg, configs)
	if err != nil {
		closeBuilt()
		return nil, err
	}
	return &Cluster{c: c, nodeCfg: nodeCfg}, nil
}

// nodeConfigFor builds the internal node attachment: the pipelined
// engine over the node's transport and, when a Server handle is present,
// the store scan hook migration needs.
func nodeConfigFor(n ClusterNode, cfg clientConfig) (cluster.NodeConfig, error) {
	if n.Transport.tr == nil {
		return cluster.NodeConfig{}, errors.New("minos: ClusterNode needs a transport (Fabric.NewClient or NewUDPClient)")
	}
	return cluster.NodeConfig{
		Name:  n.Name,
		Pipe:  client.NewPipeline(n.Transport.tr, cfg.queues, cfg.cfg),
		Scan:  scanFor(n.Server),
		TTL:   ttlFor(n.Server),
		Count: countFor(n.Server),
	}, nil
}

// scanFor adapts a Server's store into the migration scan: live items
// with their remaining TTL, expired items skipped.
func scanFor(s *Server) cluster.ScanFunc {
	if s == nil {
		return nil
	}
	store := s.s.Store()
	return func(fn func(key, value []byte, ttl time.Duration) bool) {
		store.Range(func(it *kv.Item) bool {
			var ttl time.Duration
			if it.Expire != 0 {
				rem := it.Expire - store.Clock()
				if rem <= 0 {
					return true // expired: not worth moving
				}
				ttl = time.Duration(rem)
			}
			return fn(it.Key, it.Value, ttl)
		})
	}
}

// ttlFor adapts a Server's store into the cluster's point TTL hook.
func ttlFor(s *Server) cluster.TTLFunc {
	if s == nil {
		return nil
	}
	store := s.s.Store()
	return func(key []byte) (time.Duration, bool, bool) {
		remNs, hasExpiry, ok := store.TTL(key)
		return time.Duration(remNs), hasExpiry, ok
	}
}

// countFor adapts a Server's store into the live item count hook
// /topology reports.
func countFor(s *Server) func() int {
	if s == nil {
		return nil
	}
	store := s.s.Store()
	return func() int { return store.Len() }
}

// Get fetches the value for key from the node owning it. A missing key
// returns ErrNotFound.
func (c *Cluster) Get(ctx context.Context, key []byte) ([]byte, error) {
	return c.c.Get(ctx, key)
}

// TTL reports the remaining time-to-live of key on the node owning it:
// hasExpiry is false when the key is present but never expires. An
// absent (or expired) key returns ErrNotFound; a key owned by a node
// attached without a Server handle returns ErrNoTTL.
func (c *Cluster) TTL(ctx context.Context, key []byte) (rem time.Duration, hasExpiry bool, err error) {
	return c.c.TTL(ctx, key)
}

// Put stores value under key on the node owning it.
func (c *Cluster) Put(ctx context.Context, key, value []byte) error {
	return c.c.Put(ctx, key, value)
}

// PutTTL stores value under key with a time-to-live on the node owning
// it; ttl <= 0 never expires (see Client.PutTTL for the expiry
// contract).
func (c *Cluster) PutTTL(ctx context.Context, key, value []byte, ttl time.Duration) error {
	return c.c.PutTTL(ctx, key, value, ttl)
}

// Delete removes key from the node owning it. Deleting an absent key
// returns ErrNotFound.
func (c *Cluster) Delete(ctx context.Context, key []byte) error {
	return c.c.Delete(ctx, key)
}

// MultiGet pipelines one GET per key, fanned out as concurrent per-node
// sub-batches and merged so values[i] belongs to keys[i]. A missing key
// leaves values[i] nil without failing the batch; err is the first
// failure other than a miss. The call completes when the slowest node
// does — the fan-out regime where the cluster tail is the worst node's
// tail.
func (c *Cluster) MultiGet(ctx context.Context, keys [][]byte) (values [][]byte, err error) {
	return c.c.MultiGet(ctx, keys)
}

// AddNode attaches a new node and rebalances: every key the grown ring
// assigns to the new node is streamed off its current owner (pipelined
// PUTs, remaining TTLs preserved), the ring swaps, and the stale donor
// copies are deleted. Reads are served throughout — by the old owners
// during the copy, by the new node (which already holds the keys) after
// the swap. Returns the number of keys moved.
//
// Existing nodes must all carry Server handles (ErrNoScan otherwise).
// On failure the ring is unchanged and partial copies are best-effort
// removed. Writes racing a topology change on a moving key can be lost;
// see DESIGN.md §7 for the exact consistency contract.
func (c *Cluster) AddNode(ctx context.Context, n ClusterNode) (moved int, err error) {
	nc, err := nodeConfigFor(n, c.nodeCfg)
	if err != nil {
		return 0, err
	}
	moved, err = c.c.AddNode(ctx, nc)
	if err != nil {
		_ = nc.Pipe.Close()
	}
	return moved, err
}

// RemoveNode detaches a node after streaming every live key it holds to
// the key's owner under the shrunk ring. Reads are served throughout;
// once the ring has swapped, the node's in-flight requests drain
// (bounded wait) and its engine closes — its transport stays open, the
// caller owns it. Returns the number of keys moved. The retiring node
// must carry a Server handle (ErrNoScan otherwise); removing the last
// node discards its keys and leaves a cluster that fails with
// ErrNoNodes.
func (c *Cluster) RemoveNode(ctx context.Context, name string) (moved int, err error) {
	return c.c.RemoveNode(ctx, name)
}

// RebalanceResult is one rebalance epoch's outcome.
type RebalanceResult struct {
	// Skew is the epoch's measured max-over-mean node-load ratio (0 on
	// an idle epoch); ProjectedSkew is what the executed plan's loads
	// project to (equal to Skew when nothing moved).
	Skew, ProjectedSkew float64
	// Moves is how many vnode arcs moved; KeysStreamed how many keys
	// their migration copied.
	Moves, KeysStreamed int
}

// Rebalance runs one controller epoch immediately, bypassing the
// hysteresis trigger (but not the planner's thresholds: a balanced or
// idle epoch still plans nothing): the traffic recorder is drained,
// skew measured, and any planned arc moves execute live before the
// call returns. It is how tests and operators force the decision the
// epoch loop would otherwise reach on its own schedule. Requires
// WithRebalancing (ErrRebalanceOff otherwise); concurrent topology
// changes are serialized against it.
func (c *Cluster) Rebalance(ctx context.Context) (RebalanceResult, error) {
	res, err := c.c.Rebalance(ctx, true)
	return RebalanceResult{
		Skew:          res.Skew,
		ProjectedSkew: res.ProjectedSkew,
		Moves:         res.Moves,
		KeysStreamed:  res.KeysStreamed,
	}, err
}

// Nodes returns the current node names, sorted.
func (c *Cluster) Nodes() []string {
	return append([]string(nil), c.c.Ring().Nodes()...)
}

// NodeFor returns the name of the node owning key under the current
// ring ("" on an empty cluster).
func (c *Cluster) NodeFor(key []byte) string { return c.c.Owner(key) }

// ClusterNodeStats is one node's view of the cluster traffic.
type ClusterNodeStats struct {
	// Name is the node's ring identity.
	Name string
	// State is the failure detector's verdict for the node: "alive",
	// "suspect" or "dead". Always "alive" without WithReplication.
	State string
	// Ops counts operations routed through the node (a MultiGet
	// sub-batch counts once).
	Ops uint64
	// P50/P99/P999 are the node-local operation latencies in
	// nanoseconds as observed by this cluster client.
	P50, P99, P999 int64
	// Client exposes the node's pipelined engine counters.
	Client ClientStats
}

// ClusterStats is a point-in-time view of the cluster: aggregate latency
// percentiles over every routed operation plus the per-node breakdown —
// the spread (and MaxNodeP99 in particular) is what shows the fan-out
// tail tracking the slowest node.
type ClusterStats struct {
	// Nodes lists the live nodes, sorted by name; a removed node's
	// per-node row retires with it.
	Nodes []ClusterNodeStats
	// Ops is the total operations routed over the cluster's lifetime,
	// including through since-removed nodes — it never runs backwards
	// across a topology change.
	Ops uint64
	// P50/P99/P999 merge every observation ever routed (nanoseconds),
	// removed nodes included.
	P50, P99, P999 int64
	// MaxNodeP99 is the worst live per-node p99 in nanoseconds: with
	// fan-out requests the cluster tail tracks this, not the mean.
	MaxNodeP99 int64

	// Replication counters; all zero without WithReplication.

	// Hedged counts duplicate reads launched; HedgeWins how many of
	// them beat the primary. A healthy fleet hedges a few percent of
	// reads and wins some of them; a degraded replica drives both up.
	Hedged, HedgeWins uint64
	// Failovers counts reads re-driven at another replica after a
	// transport failure.
	Failovers uint64
	// Handoffs counts hinted writes replayed onto nodes that returned
	// from the dead; HintsQueued/HintsDropped are the hint log's
	// lifetime intake and overflow.
	Handoffs, HintsQueued, HintsDropped uint64
	// NodesSuspect/NodesDead count nodes the failure detector currently
	// holds in each state.
	NodesSuspect, NodesDead int

	// Rebalance is the traffic-aware ring controller's counter block;
	// zero (Enabled false) without WithRebalancing.
	Rebalance RebalanceStats

	// UptimeSeconds is the time since the cluster was constructed,
	// derived from a start stamp taken once in NewCluster (no clock
	// reads on the data path).
	UptimeSeconds float64
}

// RebalanceStats is the ring controller's counter block inside
// ClusterStats.
type RebalanceStats struct {
	// Enabled reports whether the cluster was built with
	// WithRebalancing.
	Enabled bool
	// Epochs counts controller evaluations; Plans how many produced at
	// least one move; Failed how many epochs whose execution errored (a
	// migration failure leaves the ring unchanged; a failure in the
	// trailing stale deletion happens after the ring already swapped).
	Epochs, Plans, Failed uint64
	// Moves counts arcs moved over the cluster's lifetime, KeysStreamed
	// the keys their migrations copied.
	Moves, KeysStreamed uint64
	// ArcsMoved is how many arcs are currently served away from their
	// home node.
	ArcsMoved int
	// Skew is the last epoch's measured max-over-mean node-load ratio;
	// SkewAfter the projection after the last executed plan.
	Skew, SkewAfter float64
}

// Stats snapshots the cluster's counters.
func (c *Cluster) Stats() ClusterStats {
	st := c.c.Stats()
	out := ClusterStats{
		Ops:          st.Ops,
		P50:          st.P50,
		P99:          st.P99,
		P999:         st.P999,
		MaxNodeP99:   st.MaxNodeP99,
		Hedged:       st.Hedged,
		HedgeWins:    st.HedgeWins,
		Failovers:    st.Failovers,
		Handoffs:     st.Handoffs,
		HintsQueued:  st.HintsQueued,
		HintsDropped: st.HintsDropped,
		NodesSuspect: st.NodesSuspect,
		NodesDead:    st.NodesDead,
		Rebalance: RebalanceStats{
			Enabled:      st.Rebalance.Enabled,
			Epochs:       st.Rebalance.Epochs,
			Plans:        st.Rebalance.Plans,
			Failed:       st.Rebalance.Failed,
			Moves:        st.Rebalance.Moves,
			KeysStreamed: st.Rebalance.KeysStreamed,
			ArcsMoved:    st.Rebalance.ArcsMoved,
			Skew:         st.Rebalance.Skew,
			SkewAfter:    st.Rebalance.SkewAfter,
		},
		UptimeSeconds: st.UptimeSeconds,
	}
	for _, n := range st.Nodes {
		out.Nodes = append(out.Nodes, ClusterNodeStats{
			Name:   n.Name,
			State:  n.State,
			Ops:    n.Ops,
			P50:    n.P50,
			P99:    n.P99,
			P999:   n.P999,
			Client: clientStatsFrom(n.Pipeline),
		})
	}
	return out
}

// Close shuts down every node's client engine. Transports are not
// closed; the caller owns them.
func (c *Cluster) Close() error { return c.c.Close() }
