// Command minos-client drives an open-loop workload against a
// minos-server over UDP and reports end-to-end latency percentiles, the
// client side of §5.4.
//
// Usage:
//
//	minos-client -port 7400 -queues 4 -rate 5000 -dur 10s
//
// The workload profile must match the server's preload flags so requests
// hit (defaults align with minos-server's defaults).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	minos "github.com/minoskv/minos"
)

func main() {
	host := flag.String("host", "127.0.0.1", "server address")
	port := flag.Int("port", 7400, "server base UDP port")
	queues := flag.Int("queues", 4, "server RX queues to target (SHO: the handoff count)")
	rate := flag.Float64("rate", 5_000, "offered load (requests/s)")
	dur := flag.Duration("dur", 10*time.Second, "run duration")
	keys := flag.Int("keys", 20_000, "catalogue keys (must match server preload)")
	largeKeys := flag.Int("largekeys", 20, "catalogue large keys")
	maxLarge := flag.Int("slarge", 500_000, "maximum large item size (bytes)")
	pL := flag.Float64("plarge", 0.125, "percent of large requests")
	getRatio := flag.Float64("gets", 0.95, "GET fraction")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	prof := minos.DefaultProfile()
	prof.NumKeys = *keys
	prof.NumLargeKeys = *largeKeys
	prof.MaxLargeSize = *maxLarge
	prof.PercentLarge = *pL
	prof.GetRatio = *getRatio
	if err := prof.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "minos-client: %v\n", err)
		os.Exit(2)
	}

	tr, err := minos.NewUDPClient(*host, *port)
	if err != nil {
		fmt.Fprintf(os.Stderr, "minos-client: %v\n", err)
		os.Exit(1)
	}
	defer tr.Close()

	gen := minos.NewGenerator(minos.NewCatalog(prof), *seed)
	fmt.Printf("open loop: %.0f req/s for %v against %s:%d (pL=%g%%, %d keys)\n",
		*rate, *dur, *host, *port, *pL, *keys)
	res := minos.RunOpenLoop(context.Background(), tr, *queues, gen, minos.LoadConfig{
		Rate:     *rate,
		Duration: *dur,
		Seed:     *seed,
	})

	fmt.Printf("sent=%d received=%d loss=%.3f%%\n", res.Sent, res.Received, res.Loss()*100)
	pr := func(name string, h minos.LatencyHistogram) {
		if h.Count() == 0 {
			fmt.Printf("%-12s (no samples)\n", name)
			return
		}
		fmt.Printf("%-12s n=%-8d mean=%8.1fus p50=%8.1fus p99=%8.1fus p99.9=%8.1fus max=%8.1fus\n",
			name, h.Count(), h.Mean()/1000,
			float64(h.P50())/1000, float64(h.P99())/1000,
			float64(h.Quantile(0.999))/1000, float64(h.Max())/1000)
	}
	pr("all", res.Lat)
	pr("tiny+small", res.SmallLat)
	pr("large", res.LargeLat)
}
