// Command minos-sim runs the abstract queueing simulations of §2.2
// (Figure 2): three size-unaware dispatch disciplines under a bimodal
// service-time distribution, showing the head-of-line-blocking effect that
// motivates size-aware sharding.
//
// Usage:
//
//	minos-sim                          # the full Figure 2 grid
//	minos-sim -model nxmg1 -k 1000     # one curve
//	minos-sim -rho 0.2 -k 100 -model mgn -cores 8   # one point, verbose
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/minoskv/minos/internal/queueing"
	"github.com/minoskv/minos/internal/sim"
)

func main() {
	model := flag.String("model", "", "nxmg1, mgn or steal (empty: all)")
	k := flag.Float64("k", 0, "large-request service multiplier (0: the paper's 1,10,100,1000)")
	rho := flag.Float64("rho", 0, "single normalized load point (0: the default grid)")
	cores := flag.Int("cores", 8, "server cores")
	fracLarge := flag.Float64("flarge", queueing.PaperFracLarge, "fraction of large requests")
	durMS := flag.Int("dur", 2000, "virtual duration per point (ms)")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	models := map[string]queueing.Model{
		"nxmg1": queueing.NxMG1,
		"mgn":   queueing.MGn,
		"steal": queueing.NxMG1Steal,
	}
	var runModels []queueing.Model
	if *model == "" {
		runModels = []queueing.Model{queueing.NxMG1, queueing.MGn, queueing.NxMG1Steal}
	} else {
		m, ok := models[strings.ToLower(*model)]
		if !ok {
			fmt.Fprintf(os.Stderr, "minos-sim: unknown model %q (nxmg1, mgn, steal)\n", *model)
			os.Exit(2)
		}
		runModels = []queueing.Model{m}
	}
	ks := queueing.PaperKs()
	if *k > 0 {
		ks = []float64{*k}
	}
	rhos := queueing.DefaultRhos()
	if *rho > 0 {
		rhos = []float64{*rho}
	}
	dur := sim.Time(*durMS) * sim.Millisecond

	fmt.Printf("%-11s %6s %6s %12s %12s %10s\n", "model", "K", "rho", "p99(units)", "mean(units)", "completed")
	for _, m := range runModels {
		for _, kv := range ks {
			for i, r := range rhos {
				res, err := queueing.Run(queueing.Config{
					Model:     m,
					Cores:     *cores,
					FracLarge: *fracLarge,
					K:         kv,
					Rho:       r,
					Duration:  dur,
					Warmup:    dur / 10,
					Seed:      *seed + int64(i)*7919,
				})
				if err != nil {
					fmt.Fprintf(os.Stderr, "minos-sim: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("%-11s %6g %6.2f %12.1f %12.2f %10d\n",
					m, kv, r, res.P99, res.Mean, res.Completed)
			}
		}
	}
}
