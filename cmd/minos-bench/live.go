package main

// The live mode exercises the real concurrent server over the in-process
// fabric instead of the deterministic simulator: first a closed-loop vs
// pipelined client throughput comparison, then an open-loop run at a fixed
// offered load reporting the tail percentiles (p50/p99/p99.9) measured
// from scheduled-arrival timestamps, free of coordinated omission.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"time"

	minos "github.com/minoskv/minos"
)

// liveConfig carries the -live flag group.
type liveConfig struct {
	cores  int
	window int
	rate   float64
	dur    time.Duration
	rtt    time.Duration
	seed   int64
}

func runLive(cfg liveConfig) error {
	ctx := context.Background()
	prof := minos.DefaultProfile()
	prof.NumKeys = 10_000
	prof.NumLargeKeys = 8
	prof.MaxLargeSize = 100_000
	cat := minos.NewCatalog(prof)

	fabric := minos.NewFabric(cfg.cores)
	fabric.SetRTT(cfg.rtt)
	srv, err := minos.NewServer(fabric.Server(),
		minos.WithDesign(minos.DesignMinos), minos.WithCores(cfg.cores))
	if err != nil {
		return err
	}
	srv.Start()
	defer srv.Stop()
	srv.Preload(cat)

	fmt.Printf("live Minos server: %d cores, emulated RTT %v, %d keys\n\n",
		cfg.cores, cfg.rtt, cat.NumKeys())

	// Part 1: closed-loop vs pipelined GET throughput. Both run on the
	// same engine; the closed loop waits for each reply before sending
	// the next, the pipelined run keeps a window in flight.
	const compareOps = 5000
	rng := rand.New(rand.NewSource(cfg.seed))
	keys := make([][]byte, compareOps)
	for i := range keys {
		keys[i] = minos.KeyForID(uint64(rng.Intn(cat.NumRegularKeys())))
	}

	syncClient, err := minos.NewClient(fabric.NewClient(),
		minos.WithQueues(cfg.cores), minos.WithSeed(cfg.seed+1))
	if err != nil {
		return err
	}
	defer syncClient.Close()
	start := time.Now()
	for _, k := range keys {
		if _, err := syncClient.Get(ctx, k); err != nil {
			return fmt.Errorf("sync get: %v", err)
		}
	}
	syncOps := float64(compareOps) / time.Since(start).Seconds()

	pipe, err := minos.NewClient(fabric.NewClient(),
		minos.WithQueues(cfg.cores), minos.WithWindow(cfg.window), minos.WithSeed(cfg.seed+2))
	if err != nil {
		return err
	}
	defer pipe.Close()
	calls := make([]*minos.Call, compareOps)
	start = time.Now()
	for i, k := range keys {
		calls[i] = pipe.GetAsync(k)
	}
	for i, c := range calls {
		if _, err := c.Wait(ctx); err != nil {
			return fmt.Errorf("pipelined get %d: %v", i, err)
		}
	}
	pipeOps := float64(compareOps) / time.Since(start).Seconds()

	fmt.Printf("closed-loop client : %8.1f kops\n", syncOps/1e3)
	fmt.Printf("pipelined  client  : %8.1f kops (window %d per queue)\n", pipeOps/1e3, cfg.window)
	fmt.Printf("speedup            : %8.1fx\n\n", pipeOps/syncOps)

	// Part 2: open-loop tail latency at the offered load.
	fmt.Printf("open loop at %.0f req/s for %v...\n", cfg.rate, cfg.dur)
	res := minos.RunOpenLoop(ctx, fabric.NewClient(), cfg.cores, minos.NewGenerator(cat, cfg.seed+3), minos.LoadConfig{
		Rate:     cfg.rate,
		Duration: cfg.dur,
		Seed:     cfg.seed + 4,
	})
	p50, p99, p999 := res.Percentiles()
	fmt.Printf("sent %d, received %d (loss %.3f%%), achieved %.1f kops\n",
		res.Sent, res.Received, res.Loss()*100,
		float64(res.Received)/cfg.dur.Seconds()/1e3)
	fmt.Printf("%-8s | %10s %10s %10s\n", "class", "p50(us)", "p99(us)", "p99.9(us)")
	fmt.Printf("%-8s | %10.1f %10.1f %10.1f\n", "all",
		float64(p50)/1e3, float64(p99)/1e3, float64(p999)/1e3)
	fmt.Printf("%-8s | %10.1f %10.1f %10.1f\n", "small",
		float64(res.SmallLat.Quantile(0.50))/1e3,
		float64(res.SmallLat.Quantile(0.99))/1e3,
		float64(res.SmallLat.Quantile(0.999))/1e3)
	if res.LargeLat.Count() > 0 {
		fmt.Printf("%-8s | %10.1f %10.1f %10.1f\n", "large",
			float64(res.LargeLat.Quantile(0.50))/1e3,
			float64(res.LargeLat.Quantile(0.99))/1e3,
			float64(res.LargeLat.Quantile(0.999))/1e3)
	}
	if snap := srv.Snapshot(); snap.SwDrops > 0 || snap.BadFrames > 0 {
		fmt.Fprintf(os.Stderr, "server drops: swq=%d badframes=%d\n", snap.SwDrops, snap.BadFrames)
	}
	return nil
}
