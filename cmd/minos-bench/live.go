package main

// The live mode exercises the real concurrent server over the in-process
// fabric instead of the deterministic simulator: first a closed-loop vs
// pipelined client throughput comparison, then an open-loop run at a fixed
// offered load reporting the tail percentiles (p50/p99/p99.9) measured
// from scheduled-arrival timestamps, free of coordinated omission.

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	minos "github.com/minoskv/minos"
)

// liveConfig carries the -live flag group.
type liveConfig struct {
	cores  int
	window int
	rate   float64
	dur    time.Duration
	rtt    time.Duration
	seed   int64
}

func runLive(cfg liveConfig) error {
	prof := minos.DefaultProfile()
	prof.NumKeys = 10_000
	prof.NumLargeKeys = 8
	prof.MaxLargeSize = 100_000
	cat := minos.NewCatalog(prof)

	fabric := minos.NewFabric(cfg.cores)
	fabric.SetRTT(cfg.rtt)
	srv, err := minos.NewServer(minos.ServerConfig{Design: minos.DesignMinos, Cores: cfg.cores}, fabric.Server())
	if err != nil {
		return err
	}
	srv.Start()
	defer srv.Stop()
	minos.Preload(srv, cat)

	fmt.Printf("live Minos server: %d cores, emulated RTT %v, %d keys\n\n",
		cfg.cores, cfg.rtt, cat.NumKeys())

	// Part 1: closed-loop vs pipelined GET throughput.
	const compareOps = 5000
	rng := rand.New(rand.NewSource(cfg.seed))
	keys := make([][]byte, compareOps)
	for i := range keys {
		keys[i] = minos.KeyForID(uint64(rng.Intn(cat.NumRegularKeys())))
	}

	syncClient := minos.NewClient(fabric.NewClient(), cfg.cores, cfg.seed+1)
	defer syncClient.Close()
	start := time.Now()
	for _, k := range keys {
		if _, ok, err := syncClient.Get(k); err != nil || !ok {
			return fmt.Errorf("sync get: ok=%v err=%v", ok, err)
		}
	}
	syncOps := float64(compareOps) / time.Since(start).Seconds()

	pipe := minos.NewPipeline(fabric.NewClient(), cfg.cores,
		minos.PipelineConfig{Window: cfg.window, Seed: cfg.seed + 2})
	defer pipe.Close()
	calls := make([]*minos.Call, compareOps)
	start = time.Now()
	for i, k := range keys {
		calls[i] = pipe.GetAsync(k)
	}
	for i, c := range calls {
		if _, ok, err := c.Value(); err != nil || !ok {
			return fmt.Errorf("pipelined get %d: ok=%v err=%v", i, ok, err)
		}
	}
	pipeOps := float64(compareOps) / time.Since(start).Seconds()

	fmt.Printf("closed-loop client : %8.1f kops\n", syncOps/1e3)
	fmt.Printf("pipelined  client  : %8.1f kops (window %d per queue)\n", pipeOps/1e3, cfg.window)
	fmt.Printf("speedup            : %8.1fx\n\n", pipeOps/syncOps)

	// Part 2: open-loop tail latency at the offered load.
	fmt.Printf("open loop at %.0f req/s for %v...\n", cfg.rate, cfg.dur)
	res := minos.RunOpenLoop(fabric.NewClient(), cfg.cores, minos.NewGenerator(cat, cfg.seed+3), minos.LoadConfig{
		Rate:     cfg.rate,
		Duration: cfg.dur,
		Seed:     cfg.seed + 4,
	})
	p50, p99, p999 := res.Percentiles()
	fmt.Printf("sent %d, received %d (loss %.3f%%), achieved %.1f kops\n",
		res.Sent, res.Received, res.Loss()*100,
		float64(res.Received)/cfg.dur.Seconds()/1e3)
	fmt.Printf("%-8s | %10s %10s %10s\n", "class", "p50(us)", "p99(us)", "p99.9(us)")
	fmt.Printf("%-8s | %10.1f %10.1f %10.1f\n", "all",
		float64(p50)/1e3, float64(p99)/1e3, float64(p999)/1e3)
	fmt.Printf("%-8s | %10.1f %10.1f %10.1f\n", "small",
		float64(res.SmallLat.Quantile(0.50))/1e3,
		float64(res.SmallLat.Quantile(0.99))/1e3,
		float64(res.SmallLat.Quantile(0.999))/1e3)
	if res.LargeLat.Count() > 0 {
		fmt.Printf("%-8s | %10.1f %10.1f %10.1f\n", "large",
			float64(res.LargeLat.Quantile(0.50))/1e3,
			float64(res.LargeLat.Quantile(0.99))/1e3,
			float64(res.LargeLat.Quantile(0.999))/1e3)
	}
	if st := srv.Stats(); st.SwDrops > 0 || st.BadFrames > 0 {
		fmt.Fprintf(os.Stderr, "server drops: swq=%d badframes=%d\n", st.SwDrops, st.BadFrames)
	}
	return nil
}
