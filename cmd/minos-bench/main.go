// Command minos-bench regenerates the paper's tables and figures from the
// deterministic full-system simulation.
//
// Usage:
//
//	minos-bench -fig 3                 # one figure (1-10)
//	minos-bench -fig cache             # the cache experiment (p99 vs memory limit)
//	minos-bench -fig clustertail       # live cluster: fan-out p99 vs node count
//	minos-bench -fig hedgetail         # hedged vs unhedged p99, one degraded replica
//	minos-bench -fig flashcrowd        # flash-crowd recovery, rebalancer off vs on
//	minos-bench -fig restart           # rolling restart, warm vs cold reboot
//	minos-bench -tab 1                 # Table 1
//	minos-bench -all                   # everything, in paper order
//	minos-bench -fig 6 -scale quick    # sparse grids, seconds per figure
//	minos-bench -all -csv out/         # also write one CSV per experiment
//	minos-bench -live -rate 200000     # live server: pipelined vs sync
//	                                   # client, then open-loop p50/p99/p99.9
//
// The default scale is "full" (the EXPERIMENTS.md scale, minutes per
// figure); "quick" matches the bench_test.go benchmarks. The -live mode
// runs the real concurrent server over the in-process fabric instead of
// the simulator; -rate, -dur, -cores, -window and -rtt tune it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/minoskv/minos/internal/harness"
)

// tabler is the common shape of every experiment result.
type tabler interface{ Table() harness.Table }

// experiments lists every regenerable artifact in paper order.
var experiments = []struct {
	id  string
	run func(harness.Options) (tabler, error)
}{
	{"fig1", wrap(harness.Figure1)},
	{"fig2", wrap(harness.Figure2)},
	{"tab1", wrap(harness.Table1)},
	{"fig3", wrap(harness.Figure3)},
	{"fig4", wrap(harness.Figure4)},
	{"fig5", wrap(harness.Figure5)},
	{"fig6", wrap(harness.Figure6)},
	{"fig7", wrap(harness.Figure7)},
	{"fig8", wrap(harness.Figure8)},
	{"fig9", wrap(harness.Figure9)},
	{"fig10", wrap(harness.Figure10)},
	{"cache", wrap(harness.CacheTail)},
	{"clustertail", wrap(harness.ClusterTail)},
	{"hedgetail", wrap(harness.HedgeTail)},
	{"flashcrowd", wrap(harness.FlashCrowd)},
	{"restart", wrap(harness.Restart)},
}

// wrap adapts each typed harness function to the common signature.
func wrap[T tabler](fn func(harness.Options) (T, error)) func(harness.Options) (tabler, error) {
	return func(o harness.Options) (tabler, error) { return fn(o) }
}

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 1-10, \"cache\", \"clustertail\", \"hedgetail\", \"flashcrowd\" or \"restart\"")
	tab := flag.Int("tab", 0, "table number to regenerate (1)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	scale := flag.String("scale", "full", "experiment scale: quick or full")
	csvDir := flag.String("csv", "", "directory to write one CSV per experiment (optional)")
	seed := flag.Int64("seed", 1, "experiment seed")
	quiet := flag.Bool("q", false, "suppress per-run progress lines")
	live := flag.Bool("live", false, "run the live server instead of the simulator")
	rate := flag.Float64("rate", 200_000, "live: offered open-loop load (req/s)")
	dur := flag.Duration("dur", 2*time.Second, "live: open-loop measurement duration")
	cores := flag.Int("cores", 2, "live: server cores (fabric RX queues)")
	window := flag.Int("window", 64, "live: pipeline in-flight window per queue")
	rtt := flag.Duration("rtt", 20*time.Microsecond, "live: emulated network round trip")
	flag.Parse()

	if *live {
		if err := runLive(liveConfig{
			cores:  *cores,
			window: *window,
			rate:   *rate,
			dur:    *dur,
			rtt:    *rtt,
			seed:   *seed,
		}); err != nil {
			fatalf("live: %v", err)
		}
		return
	}

	opts := harness.Options{Seed: *seed}
	sc, err := parseScale(*scale)
	if err != nil {
		usagef("%v", err)
	}
	if sc == scaleFull {
		opts.Scale = harness.Full
	} else {
		opts.Scale = harness.Quick
	}
	if !*quiet {
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "  "+format+"\n", args...)
		}
	}

	want, err := experimentIDs(*fig, *tab, *all)
	if err != nil {
		usagef("%v", err)
	}
	if len(want) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	for _, id := range want {
		e, ok := find(id)
		if !ok {
			fatalf("unknown experiment %q", id)
		}
		start := time.Now()
		fmt.Fprintf(os.Stderr, "== %s (scale %s) ==\n", id, *scale)
		res, err := e.run(opts)
		if err != nil {
			fatalf("%s: %v", id, err)
		}
		table := res.Table()
		fmt.Println(table.String())
		fmt.Fprintf(os.Stderr, "-- %s done in %v\n\n", id, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := writeCSV(*csvDir, id, table); err != nil {
				fatalf("writing csv: %v", err)
			}
		}
	}
}

func find(id string) (struct {
	id  string
	run func(harness.Options) (tabler, error)
}, bool) {
	for _, e := range experiments {
		if e.id == id {
			return e, true
		}
	}
	return experiments[0], false
}

func writeCSV(dir, id string, t harness.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, id+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "minos-bench: "+strings.TrimSuffix(format, "\n")+"\n", args...)
	os.Exit(1)
}

// usagef reports a bad flag value: the message, then usage, then the
// conventional exit code 2 — never a silent fallback to a default.
func usagef(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "minos-bench: "+strings.TrimSuffix(format, "\n")+"\n", args...)
	flag.Usage()
	os.Exit(2)
}
