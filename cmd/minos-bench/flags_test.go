package main

import (
	"strings"
	"testing"
)

func TestExperimentIDs(t *testing.T) {
	cases := []struct {
		name    string
		fig     string
		tab     int
		all     bool
		want    []string
		wantErr string
	}{
		{name: "figure number", fig: "3", want: []string{"fig3"}},
		{name: "figure low edge", fig: "1", want: []string{"fig1"}},
		{name: "figure high edge", fig: "10", want: []string{"fig10"}},
		{name: "named cache", fig: "cache", want: []string{"cache"}},
		{name: "named clustertail", fig: "clustertail", want: []string{"clustertail"}},
		{name: "named hedgetail", fig: "hedgetail", want: []string{"hedgetail"}},
		{name: "table 1", tab: 1, want: []string{"tab1"}},
		{name: "nothing selected", want: nil},
		{name: "figure zero", fig: "0", wantErr: "out of range"},
		{name: "figure eleven", fig: "11", wantErr: "out of range"},
		{name: "figure negative", fig: "-2", wantErr: "out of range"},
		{name: "unknown name", fig: "clustre", wantErr: "unknown -fig"},
		{name: "table out of range", tab: 2, wantErr: "out of range"},
		{name: "table negative", tab: -1, wantErr: "out of range"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := experimentIDs(c.fig, c.tab, c.all)
			if c.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), c.wantErr) {
					t.Fatalf("experimentIDs(%q,%d,%v) err = %v, want containing %q",
						c.fig, c.tab, c.all, err, c.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if len(got) != len(c.want) {
				t.Fatalf("got %v, want %v", got, c.want)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Fatalf("got %v, want %v", got, c.want)
				}
			}
		})
	}

	// -all must cover every registered experiment, in order.
	all, err := experimentIDs("", 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(experiments) {
		t.Fatalf("-all resolves %d experiments, registry has %d", len(all), len(experiments))
	}
	for i, e := range experiments {
		if all[i] != e.id {
			t.Fatalf("-all[%d] = %q, want %q", i, all[i], e.id)
		}
	}
	// Every id -all yields must resolve, so fatalf("unknown experiment")
	// is unreachable from -all.
	for _, id := range all {
		if _, ok := find(id); !ok {
			t.Fatalf("registered id %q does not resolve", id)
		}
	}
}

func TestParseScale(t *testing.T) {
	cases := []struct {
		in      string
		want    scale
		wantErr bool
	}{
		{"quick", scaleQuick, false},
		{"full", scaleFull, false},
		{"", 0, true},
		{"Quick", 0, true},
		{"fast", 0, true},
	}
	for _, c := range cases {
		got, err := parseScale(c.in)
		if c.wantErr != (err != nil) {
			t.Errorf("parseScale(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("parseScale(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}
