package main

// Experiment selection is parsed by a pure function so the CLI's
// contract — exit non-zero with a usage message on an unknown -fig/-tab
// instead of silently running something else — is table-testable.

import (
	"fmt"
	"strconv"
)

// experimentIDs resolves the -fig/-tab/-all flag combination to the list
// of experiment ids to run, in paper order. It returns an error for
// unknown or out-of-range selections and (nil, nil) when nothing was
// selected (the caller prints usage).
func experimentIDs(fig string, tab int, all bool) ([]string, error) {
	switch {
	case all:
		ids := make([]string, 0, len(experiments))
		for _, e := range experiments {
			ids = append(ids, e.id)
		}
		return ids, nil
	case fig != "":
		if n, err := strconv.Atoi(fig); err == nil {
			if n < 1 || n > 10 {
				return nil, fmt.Errorf("-fig %d out of range (1-10)", n)
			}
			return []string{fmt.Sprintf("fig%d", n)}, nil
		}
		// Named experiment, e.g. "cache", "clustertail", "hedgetail",
		// "flashcrowd" or "restart".
		id := fig
		if _, ok := find(id); !ok {
			return nil, fmt.Errorf("unknown -fig %q (want 1-10, %q, %q, %q, %q or %q)", fig, "cache", "clustertail", "hedgetail", "flashcrowd", "restart")
		}
		return []string{id}, nil
	case tab != 0:
		if tab != 1 {
			return nil, fmt.Errorf("-tab %d out of range (the paper has one table)", tab)
		}
		return []string{"tab1"}, nil
	}
	return nil, nil
}

// parseScale resolves -scale, rejecting unknown values.
func parseScale(s string) (scale, error) {
	switch s {
	case "quick":
		return scaleQuick, nil
	case "full":
		return scaleFull, nil
	default:
		return 0, fmt.Errorf("unknown -scale %q (want quick or full)", s)
	}
}

// scale mirrors harness.Scale without importing it here, keeping the
// flag layer dependency-free for tests.
type scale int

const (
	scaleQuick scale = iota
	scaleFull
)
