package main

import "testing"

func TestValidateReplicas(t *testing.T) {
	cases := []struct {
		name            string
		replicas, nodes int
		wantErr         bool
	}{
		{"unreplicated", 1, 1, false},
		{"unreplicated multi-node", 1, 4, false},
		{"two of three", 2, 3, false},
		{"full replication", 3, 3, false},
		{"zero replicas", 0, 3, true},
		{"negative replicas", -1, 3, true},
		{"more replicas than nodes", 4, 3, true},
		{"two replicas single node", 2, 1, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateReplicas(c.replicas, c.nodes)
			if gotErr := err != nil; gotErr != c.wantErr {
				t.Errorf("validateReplicas(%d, %d) = %v, wantErr %v",
					c.replicas, c.nodes, err, c.wantErr)
			}
		})
	}
}

func TestValidateRevive(t *testing.T) {
	cases := []struct {
		name    string
		revive  bool
		kill    bool
		durable string
		wantErr bool
	}{
		{"off", false, false, "", false},
		{"off with kill and durable", false, true, "d", false},
		{"full crash-recovery run", true, true, "d", false},
		{"revive without kill", true, false, "d", true},
		{"revive without durable", true, true, "", true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := validateRevive(c.revive, c.kill, c.durable)
			if gotErr := err != nil; gotErr != c.wantErr {
				t.Errorf("validateRevive(%v, %v, %q) = %v, wantErr %v",
					c.revive, c.kill, c.durable, err, c.wantErr)
			}
		})
	}
}
