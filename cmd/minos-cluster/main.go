// Command minos-cluster runs an M-node fabric cluster — M independent
// live Minos (or baseline) servers behind the consistent-hash cluster
// client — under an open-loop fan-out load, and reports the cluster-
// level tail next to every node's own tail, the slowest-node-dominates
// effect the cluster layer exists to measure.
//
// Usage:
//
//	minos-cluster -nodes 4                          # 4-node Minos cluster
//	minos-cluster -nodes 8 -design hkh -rate 20000  # the baseline fleet
//	minos-cluster -nodes 3 -grow                    # add a 4th node mid-run
//	minos-cluster -nodes 4 -replicas 2 -kill        # kill a node mid-run
//	minos-cluster -nodes 4 -replicas 2 -durable dir -kill -revive
//	                                                # crash + warm restart
//
// With -grow, a fresh node joins the ring at half time while the load
// keeps running: the command reports how many keys streamed to it and
// the post-join distribution.
//
// With -replicas 2 the cluster writes every key to two ring-adjacent
// nodes and hedges slow reads to the second replica (-nohedge turns
// hedging off). With -kill — which requires -replicas >= 2 — one node's
// server is stopped cold at half time: the failure detector marks it
// dead, reads fail over, writes queue hints, and the final report shows
// the replication counters alongside the latency distribution.
//
// With -durable every node keeps a write-behind log under the given
// directory (one subdirectory per node). Adding -revive to a -kill run
// restarts the killed node from its own log at three-quarter time: it
// replays the log, rejoins warm, and drains the hints that accumulated
// while it was down — the full crash-recovery story in one run.
//
// With -resp the cluster answers a RESP2 subset on the given TCP address
// (redis-cli against the whole fleet: commands route through the ring,
// replication and hedging included). With -ops it serves the HTTP admin
// plane — /metrics, /topology, /healthz, and POST /nodes, which
// provisions a fresh fabric node and joins it live. When either flag is
// set the command keeps serving after the load report until interrupted.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	minos "github.com/minoskv/minos"
)

func main() {
	nodes := flag.Int("nodes", 3, "cluster nodes (fabric servers)")
	cores := flag.Int("cores", 2, "server cores (RX queues) per node")
	design := flag.String("design", "minos", "per-node design: minos, hkh, sho or hkhws")
	rate := flag.Float64("rate", 10_000, "offered fan-out requests per second")
	dur := flag.Duration("dur", 2*time.Second, "measurement duration")
	fanout := flag.Int("fanout", 8, "GETs per fan-out request")
	window := flag.Int("window", 256, "client in-flight window per queue")
	rtt := flag.Duration("rtt", 20*time.Microsecond, "emulated network round trip")
	keys := flag.Int("keys", 10_000, "preloaded keys")
	grow := flag.Bool("grow", false, "add one node mid-run (live AddNode)")
	replicas := flag.Int("replicas", 1, "replicas per key (R-way writes; 1 = no replication)")
	noHedge := flag.Bool("nohedge", false, "disable hedged reads (with -replicas >= 2)")
	kill := flag.Bool("kill", false, "kill one node mid-run (requires -replicas >= 2)")
	durable := flag.String("durable", "", "base directory for per-node write-behind logs (empty = off)")
	revive := flag.Bool("revive", false, "with -kill: restart the killed node from its write-behind log at 3/4 time (requires -durable)")
	rebalance := flag.Duration("rebalance", 0, "traffic-aware rebalancing epoch (e.g. 500ms; 0 = off)")
	seed := flag.Int64("seed", 1, "workload seed")
	respAddr := flag.String("resp", "", "TCP address for the RESP front end (e.g. :6379; empty = off)")
	opsAddr := flag.String("ops", "", "TCP address for the HTTP admin/metrics plane (e.g. :9100; empty = off)")
	flag.Parse()

	d, err := minos.ParseDesign(*design)
	if err != nil {
		fmt.Fprintf(os.Stderr, "minos-cluster: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	if *nodes < 1 {
		fmt.Fprintf(os.Stderr, "minos-cluster: -nodes %d: need at least one node\n", *nodes)
		flag.Usage()
		os.Exit(2)
	}
	if *rate <= 0 {
		fmt.Fprintf(os.Stderr, "minos-cluster: -rate %g: need a positive request rate\n", *rate)
		flag.Usage()
		os.Exit(2)
	}
	if *fanout < 1 {
		fmt.Fprintf(os.Stderr, "minos-cluster: -fanout %d: need at least one GET per request\n", *fanout)
		flag.Usage()
		os.Exit(2)
	}
	if *dur <= 0 {
		fmt.Fprintf(os.Stderr, "minos-cluster: -dur %v: need a positive duration\n", *dur)
		flag.Usage()
		os.Exit(2)
	}
	if err := validateReplicas(*replicas, *nodes); err != nil {
		fmt.Fprintf(os.Stderr, "minos-cluster: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	if *kill && *replicas < 2 {
		fmt.Fprintf(os.Stderr, "minos-cluster: -kill without replication loses data; use -replicas 2 or more\n")
		flag.Usage()
		os.Exit(2)
	}
	if *kill && *nodes < 2 {
		fmt.Fprintf(os.Stderr, "minos-cluster: -kill needs at least two nodes\n")
		flag.Usage()
		os.Exit(2)
	}
	if err := validateRevive(*revive, *kill, *durable); err != nil {
		fmt.Fprintf(os.Stderr, "minos-cluster: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(d, *nodes, *cores, *rate, *dur, *fanout, *window, *rtt, *keys, *grow, *replicas, *noHedge, *kill, *rebalance, *seed, *respAddr, *opsAddr, *durable, *revive); err != nil {
		fmt.Fprintf(os.Stderr, "minos-cluster: %v\n", err)
		os.Exit(1)
	}
}

// validateReplicas checks the -replicas flag against the node count: a
// replication factor below one is meaningless, and one above the node
// count cannot place every copy on a distinct node.
func validateReplicas(replicas, nodes int) error {
	if replicas < 1 {
		return fmt.Errorf("-replicas %d: need at least one replica", replicas)
	}
	if replicas > nodes {
		return fmt.Errorf("-replicas %d: cannot exceed -nodes %d (each copy needs its own node)", replicas, nodes)
	}
	return nil
}

// validateRevive checks the -revive flag's prerequisites: it restarts
// the node -kill crashed, from the log only -durable maintains.
func validateRevive(revive, kill bool, durable string) error {
	if !revive {
		return nil
	}
	if !kill {
		return fmt.Errorf("-revive without -kill has nothing to restart")
	}
	if durable == "" {
		return fmt.Errorf("-revive needs -durable: the node restarts from its write-behind log")
	}
	return nil
}

// nodeWALDir is the per-node log directory under the -durable base.
func nodeWALDir(base string, i int) string {
	return filepath.Join(base, fmt.Sprintf("node-%d", i))
}

// startNode boots one live server on the fabric node and returns its
// cluster attachment. A non-empty durable base gives the server a
// write-behind log under its own subdirectory, so a restart of the same
// node index comes back warm.
func startNode(fc *minos.FabricCluster, i int, d minos.Design, cores int, durable string) (minos.ClusterNode, *minos.Server, error) {
	fab := fc.Node(i)
	opts := []minos.ServerOption{
		minos.WithDesign(d), minos.WithCores(cores),
		minos.WithEpoch(100 * time.Millisecond),
	}
	if durable != "" {
		opts = append(opts, minos.WithDurability(minos.DurabilityConfig{Dir: nodeWALDir(durable, i)}))
	}
	srv, err := minos.NewServer(fab.Server(), opts...)
	if err != nil {
		return minos.ClusterNode{}, nil, err
	}
	srv.Start()
	return minos.ClusterNode{
		Name:      fmt.Sprintf("node-%d", i),
		Transport: fab.NewClient(),
		Server:    srv,
	}, srv, nil
}

func run(d minos.Design, nodes, cores int, rate float64, dur time.Duration, fanout, window int, rtt time.Duration, numKeys int, grow bool, replicas int, noHedge, kill bool, rebalance time.Duration, seed int64, respAddr, opsAddr, durable string, revive bool) error {
	ctx := context.Background()
	fc := minos.NewFabricCluster(nodes, cores)
	fc.SetRTT(rtt)

	// servers is appended to by -grow on the main goroutine and by the
	// ops plane's node provisioner on HTTP handler goroutines.
	var (
		srvMu   sync.Mutex
		servers []*minos.Server
	)
	addServer := func(s *minos.Server) {
		srvMu.Lock()
		servers = append(servers, s)
		srvMu.Unlock()
	}
	var members []minos.ClusterNode
	for i := 0; i < nodes; i++ {
		n, srv, err := startNode(fc, i, d, cores, durable)
		if err != nil {
			return err
		}
		members = append(members, n)
		addServer(srv)
	}
	defer func() {
		srvMu.Lock()
		defer srvMu.Unlock()
		for _, s := range servers {
			s.Stop()
		}
	}()

	copts := []minos.ClusterOption{
		minos.WithClusterSeed(uint64(seed)),
		minos.WithNodeOptions(minos.WithQueues(cores), minos.WithWindow(window)),
	}
	if replicas > 1 {
		copts = append(copts, minos.WithReplication(replicas))
		if noHedge {
			copts = append(copts, minos.WithoutHedging())
		}
		if kill {
			// Probe aggressively so a demo-length run sees the full
			// alive -> suspect -> dead transition after the kill.
			copts = append(copts, minos.WithFailureDetection(50*time.Millisecond, 150*time.Millisecond))
		}
	}
	if rebalance > 0 {
		copts = append(copts, minos.WithRebalancing(minos.RebalanceConfig{Epoch: rebalance}))
	}
	cl, err := minos.NewCluster(members, copts...)
	if err != nil {
		return err
	}
	defer cl.Close()

	// Front ends: RESP commands route through the cluster; POST /nodes
	// provisions a fresh fabric node and joins it to the live ring.
	var fronts []net.Listener
	if respAddr != "" {
		ln, lerr := net.Listen("tcp", respAddr)
		if lerr != nil {
			return fmt.Errorf("-resp: %w", lerr)
		}
		fronts = append(fronts, ln)
		go func() {
			if serr := cl.ServeRESP(ln); serr != nil {
				fmt.Fprintf(os.Stderr, "minos-cluster: RESP: %v\n", serr)
			}
		}()
		fmt.Printf("RESP front end on %s\n", ln.Addr())
	}
	if opsAddr != "" {
		ln, lerr := net.Listen("tcp", opsAddr)
		if lerr != nil {
			return fmt.Errorf("-ops: %w", lerr)
		}
		fronts = append(fronts, ln)
		provision := func(_ context.Context, name string) (minos.ClusterNode, error) {
			fab, i := fc.Grow()
			fab.SetRTT(rtt)
			n, srv, perr := startNode(fc, i, d, cores, durable)
			if perr != nil {
				return minos.ClusterNode{}, perr
			}
			n.Name = name
			addServer(srv)
			return n, nil
		}
		go func() {
			if serr := cl.ServeOps(ln, minos.WithNodeProvisioner(provision)); serr != nil {
				fmt.Fprintf(os.Stderr, "minos-cluster: ops: %v\n", serr)
			}
		}()
		fmt.Printf("ops plane on http://%s (/metrics, /topology, /nodes, /healthz)\n", ln.Addr())
	}
	defer func() {
		for _, ln := range fronts {
			ln.Close()
		}
	}()

	// Preload through the cluster, so every key lands on its ring owner.
	prof := minos.DefaultProfile()
	prof.NumKeys = numKeys
	prof.NumLargeKeys = 8
	prof.MaxLargeSize = 100_000
	cat := minos.NewCatalog(prof)
	filler := make([]byte, prof.MaxLargeSize)
	for id := 0; id < cat.NumKeys(); id++ {
		if err := cl.Put(ctx, minos.KeyForID(uint64(id)), filler[:cat.Size(uint64(id))]); err != nil {
			return fmt.Errorf("preload key %d: %w", id, err)
		}
	}
	fmt.Printf("%v cluster: %d nodes x %d cores, %d keys, RTT %v\n",
		d, nodes, cores, cat.NumKeys(), rtt)

	// Open-loop fan-out load: scheduled arrivals, latency from the
	// scheduled instant (no coordinated omission).
	gen := minos.NewGenerator(cat, seed+17)
	var wg sync.WaitGroup
	sem := make(chan struct{}, 1024)
	gap := time.Duration(float64(time.Second) / rate)
	start := time.Now()
	next := start
	var sent uint64

	growAt := start.Add(dur / 2)
	grown := false
	killAt := start.Add(dur / 2)
	killed := false
	reviveAt := start.Add(3 * dur / 4)
	revived := false
	const victim = 1
	for time.Since(start) < dur {
		if kill && !killed && time.Now().After(killAt) {
			killed = true
			// Crash without telling anyone — requests at the victim just
			// time out, the way a killed process looks from the wire. On a
			// durable node Kill abandons the write-behind ring mid-flight,
			// so the log on disk is exactly what a kill -9 leaves.
			srvMu.Lock()
			vs := servers[victim]
			srvMu.Unlock()
			vs.Kill()
			fmt.Printf("  [%.2fs] node-%d killed (server crashed cold)\n",
				time.Since(start).Seconds(), victim)
		}
		if revive && killed && !revived && time.Now().After(reviveAt) {
			revived = true
			// Reboot the victim on the same fabric endpoint from the same
			// log directory: it replays its log, the failure detector
			// flips it back alive, and the hint queue drains onto it.
			_, srv, rerr := startNode(fc, victim, d, cores, durable)
			if rerr != nil {
				return fmt.Errorf("revive node-%d: %w", victim, rerr)
			}
			addServer(srv)
			w := srv.Snapshot().WAL
			fmt.Printf("  [%.2fs] node-%d revived warm: %d records replayed from %s\n",
				time.Since(start).Seconds(), victim, w.Replayed, nodeWALDir(durable, victim))
		}
		if grow && !grown && time.Now().After(growAt) {
			grown = true
			fab, i := fc.Grow()
			fab.SetRTT(rtt)
			n, srv, err := startNode(fc, i, d, cores, durable)
			if err != nil {
				return err
			}
			addServer(srv)
			joined := time.Now()
			moved, err := cl.AddNode(ctx, n)
			if err != nil {
				return fmt.Errorf("AddNode: %w", err)
			}
			fmt.Printf("  [%.2fs] %s joined: %d keys streamed in %v\n",
				time.Since(start).Seconds(), n.Name, moved, time.Since(joined).Round(time.Millisecond))
		}
		next = next.Add(gap)
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		keys := make([][]byte, fanout)
		for i := range keys {
			keys[i] = minos.KeyForID(gen.NextKeyID())
		}
		sem <- struct{}{}
		wg.Add(1)
		sent++
		go func() {
			defer wg.Done()
			_, _ = cl.MultiGet(ctx, keys)
			<-sem
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := cl.Stats()
	fmt.Printf("\n%d fan-out requests in %v (%.0f/s), fan-out K=%d\n",
		sent, elapsed.Round(time.Millisecond), float64(sent)/elapsed.Seconds(), fanout)
	fmt.Printf("cluster    : p50=%7.1fus p99=%7.1fus p99.9=%7.1fus  (worst node p99 %7.1fus)\n",
		float64(st.P50)/1e3, float64(st.P99)/1e3, float64(st.P999)/1e3, float64(st.MaxNodeP99)/1e3)
	for _, n := range st.Nodes {
		state := ""
		if n.State != "" && n.State != "alive" {
			state = "  [" + n.State + "]"
		}
		fmt.Printf("%-11s: p50=%7.1fus p99=%7.1fus p99.9=%7.1fus  ops=%d%s\n",
			n.Name, float64(n.P50)/1e3, float64(n.P99)/1e3, float64(n.P999)/1e3, n.Ops, state)
	}
	if replicas > 1 {
		fmt.Printf("replication: R=%d hedged=%d hedge-wins=%d failovers=%d handoffs=%d hints-queued=%d hints-dropped=%d suspect=%d dead=%d\n",
			replicas, st.Hedged, st.HedgeWins, st.Failovers, st.Handoffs,
			st.HintsQueued, st.HintsDropped, st.NodesSuspect, st.NodesDead)
	}
	if rb := st.Rebalance; rb.Enabled {
		fmt.Printf("rebalancing: epochs=%d plans=%d moves=%d keys-streamed=%d arcs-moved=%d skew=%.2f->%.2f\n",
			rb.Epochs, rb.Plans, rb.Moves, rb.KeysStreamed, rb.ArcsMoved, rb.Skew, rb.SkewAfter)
	}
	if drops := fc.Drops(); drops > 0 {
		fmt.Fprintf(os.Stderr, "fabric drops: %d\n", drops)
	}
	if len(fronts) > 0 {
		fmt.Println("front ends still serving; ^C to stop")
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
		<-stop
		fmt.Println("\nshutting down")
	}
	return nil
}
