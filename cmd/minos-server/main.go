// Command minos-server runs a live key-value server over UDP: one socket
// per RX queue on consecutive ports, the port-selects-the-queue steering
// of §5.1. Pair it with minos-client.
//
// Usage:
//
//	minos-server -port 7400 -cores 4                  # Minos (default)
//	minos-server -design hkh -cores 4                 # a baseline design
//	minos-server -preload -keys 20000 -largekeys 20   # preload a dataset
//	minos-server -resp :6379 -ops :9100               # RESP + admin planes
//	minos-server -durable /var/lib/minos              # restart-durable
//
// With -durable every write is appended (write-behind) to a crash-safe
// log in the given directory and the server restarts warm from it.
//
// With -resp the server additionally answers a RESP2 subset on the given
// TCP address (redis-cli compatible: GET/SET/DEL/EXISTS/TTL/PING/INFO).
// With -ops it serves the HTTP admin plane: /metrics (Prometheus text
// format), /healthz.
//
// The server prints the controller's plan and throughput once per epoch
// until interrupted.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	minos "github.com/minoskv/minos"
)

func main() {
	host := flag.String("host", "127.0.0.1", "address to bind")
	port := flag.Int("port", 7400, "base UDP port (queue q listens on port+q)")
	cores := flag.Int("cores", 4, "server cores / RX queues")
	design := flag.String("design", "minos", "minos, hkh, sho or hkhws")
	epoch := flag.Duration("epoch", time.Second, "controller epoch")
	preload := flag.Bool("preload", true, "preload a workload catalogue")
	keys := flag.Int("keys", 20_000, "preloaded keys")
	largeKeys := flag.Int("largekeys", 20, "preloaded large keys")
	maxLarge := flag.Int("slarge", 500_000, "maximum large item size (bytes)")
	respAddr := flag.String("resp", "", "TCP address for the RESP front end (e.g. :6379; empty = off)")
	opsAddr := flag.String("ops", "", "TCP address for the HTTP admin/metrics plane (e.g. :9100; empty = off)")
	durable := flag.String("durable", "", "directory for the write-behind log; a restart pointed at the same directory comes back warm (empty = off)")
	flag.Parse()

	d, err := minos.ParseDesign(*design)
	if err != nil {
		fmt.Fprintf(os.Stderr, "minos-server: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	tr, err := minos.NewUDPServer(*host, *port, *cores)
	if err != nil {
		fmt.Fprintf(os.Stderr, "minos-server: %v\n", err)
		os.Exit(1)
	}
	opts := []minos.ServerOption{
		minos.WithDesign(d),
		minos.WithCores(*cores),
		minos.WithEpoch(*epoch),
	}
	if *durable != "" {
		opts = append(opts, minos.WithDurability(minos.DurabilityConfig{Dir: *durable}))
	}
	srv, err := minos.NewServer(tr, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "minos-server: %v\n", err)
		os.Exit(1)
	}
	if *durable != "" {
		if w := srv.Snapshot().WAL; w.Replayed > 0 {
			fmt.Printf("replayed %d records from %s (warm restart)\n", w.Replayed, *durable)
		} else {
			fmt.Printf("write-behind log in %s\n", *durable)
		}
	}

	if *preload {
		prof := minos.DefaultProfile()
		prof.NumKeys = *keys
		prof.NumLargeKeys = *largeKeys
		prof.MaxLargeSize = *maxLarge
		n := srv.Preload(minos.NewCatalog(prof))
		fmt.Printf("preloaded %d items (%d large, sL=%d)\n", n, *largeKeys, *maxLarge)
	}

	srv.Start()
	defer srv.Stop()
	fmt.Printf("%v serving on %s ports %d-%d (%d cores); ^C to stop\n",
		d, *host, *port, *port+*cores-1, *cores)

	var fronts []net.Listener
	if *respAddr != "" {
		ln, err := net.Listen("tcp", *respAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "minos-server: -resp: %v\n", err)
			os.Exit(1)
		}
		fronts = append(fronts, ln)
		go func() {
			if err := srv.ServeRESP(ln); err != nil {
				fmt.Fprintf(os.Stderr, "minos-server: RESP: %v\n", err)
			}
		}()
		fmt.Printf("RESP front end on %s\n", ln.Addr())
	}
	if *opsAddr != "" {
		ln, err := net.Listen("tcp", *opsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "minos-server: -ops: %v\n", err)
			os.Exit(1)
		}
		fronts = append(fronts, ln)
		go func() {
			if err := srv.ServeOps(ln); err != nil {
				fmt.Fprintf(os.Stderr, "minos-server: ops: %v\n", err)
			}
		}()
		fmt.Printf("ops plane on http://%s (/metrics, /healthz)\n", ln.Addr())
	}
	defer func() {
		for _, ln := range fronts {
			ln.Close()
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*epoch)
	defer ticker.Stop()
	var lastOps uint64
	for {
		select {
		case <-stop:
			fmt.Println("\nshutting down")
			return
		case <-ticker.C:
			snap := srv.Snapshot()
			fmt.Printf("ops=%d (+%d) items=%d drops=%d bad=%d  %v\n",
				snap.Ops, snap.Ops-lastOps, snap.Items, snap.SwDrops, snap.BadFrames, snap.Plan)
			lastOps = snap.Ops
		}
	}
}
