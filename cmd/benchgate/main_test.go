package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var gateAll = regexp.MustCompile("LiveGet|LivePut|Wire")

func report(cpu string, results ...Result) Report {
	return Report{SHA: "test", CPU: cpu, Results: results}
}

func res(name string, nsOp, allocsOp float64) Result {
	return Result{
		Name:       name,
		Iterations: 1000,
		Metrics:    map[string]float64{"ns/op": nsOp, "allocs/op": allocsOp, "B/op": 0},
	}
}

// TestGateRedLinesSyntheticAllocRegression is the acceptance check for
// the ratchet: a single extra alloc/op on a gated benchmark must fail,
// on any CPU.
func TestGateRedLinesSyntheticAllocRegression(t *testing.T) {
	base := report("cpuA", res("BenchmarkLiveGetRoundTrip", 3000, 0))
	bad := report("cpuB", res("BenchmarkLiveGetRoundTrip", 3000, 1))
	violations := gate(base, bad, gateAll, 15)
	if len(violations) != 1 || !strings.Contains(violations[0], "allocs/op regressed 0 -> 1") {
		t.Fatalf("alloc regression not red-lined: %v", violations)
	}
}

func TestGateRedLinesSyntheticTimeRegression(t *testing.T) {
	base := report("cpuA", res("BenchmarkWireEncodeLeasedSmall", 100, 0))
	bad := report("cpuA", res("BenchmarkWireEncodeLeasedSmall", 130, 0))
	violations := gate(base, bad, gateAll, 15)
	if len(violations) != 1 || !strings.Contains(violations[0], "ns/op regressed") {
		t.Fatalf("+30%% ns/op not red-lined: %v", violations)
	}
}

func TestGateIgnoresTimeAcrossDifferentCPUs(t *testing.T) {
	base := report("cpuA", res("BenchmarkWireEncodeLeasedSmall", 100, 0))
	slowerMachine := report("cpuB", res("BenchmarkWireEncodeLeasedSmall", 500, 0))
	if v := gate(base, slowerMachine, gateAll, 15); len(v) != 0 {
		t.Fatalf("cross-CPU ns/op gated: %v", v)
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	base := report("cpuA", res("BenchmarkLivePutRoundTrip", 3000, 0))
	ok := report("cpuA", res("BenchmarkLivePutRoundTrip", 3300, 0)) // +10%
	if v := gate(base, ok, gateAll, 15); len(v) != 0 {
		t.Fatalf("within-threshold run failed: %v", v)
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	base := report("cpuA", res("BenchmarkLiveGetRoundTrip", 3000, 0))
	empty := report("cpuA", res("BenchmarkUnrelated", 1, 0))
	v := gate(base, empty, gateAll, 15)
	if len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Fatalf("deleted gated benchmark not flagged: %v", v)
	}
}

func TestGateSkipsUnmatchedBenchmarks(t *testing.T) {
	base := report("cpuA", res("BenchmarkSimulatorEpoch", 100, 5))
	bad := report("cpuA", res("BenchmarkSimulatorEpoch", 900, 50))
	if v := gate(base, bad, gateAll, 15); len(v) != 0 {
		t.Fatalf("non-datapath benchmark gated: %v", v)
	}
}

func TestFindBaselineInDirectory(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_abc123.json")
	if err := os.WriteFile(path, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := findBaseline(dir)
	if err != nil || got != path {
		t.Fatalf("findBaseline = %q, %v", got, err)
	}
	// Two baselines is ambiguous and must error.
	if err := os.WriteFile(filepath.Join(dir, "BENCH_def456.json"), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := findBaseline(dir); err == nil {
		t.Fatal("two baselines accepted")
	}
}
