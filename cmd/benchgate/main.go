// Command benchgate is the perf ratchet: it compares a benchjson report
// for the current commit against the blessed baseline committed under
// bench/ and exits nonzero on a regression. Two rules, in the spirit of
// "performance only ratchets forward":
//
//   - allocs/op may NEVER regress on a gated benchmark, on any machine —
//     allocation counts are deterministic, so even +1 is a real change
//     somebody must explain by re-blessing the baseline.
//   - ns/op may not regress by more than -threshold percent (default 15),
//     but only when both reports ran on the same CPU model; wall-clock
//     comparisons across heterogeneous CI machines are noise, not signal.
//
// A gated benchmark that disappears from the current report also fails:
// deleting a benchmark must be a deliberate act (re-bless the baseline),
// not a silent hole in the gate.
//
// Usage:
//
//	benchgate -baseline bench/ -current BENCH_current.json [-match 'LiveGet|LivePut|Wire|RESP|RingLookup|WAL'] [-threshold 15]
//
// -baseline may name a report file or a directory holding exactly one
// BENCH_*.json (the repo convention: the blessed baseline is the only
// file there, named after the commit that produced it).
//
// Blessing a new baseline after an intentional change:
//
//	go test -run=NONE -bench 'BenchmarkLive(Get|Put)|BenchmarkWire|BenchmarkRESP' -benchmem -benchtime 2000x . ./internal/wire/ \
//	  | go run ./cmd/benchjson -sha $(git rev-parse HEAD) > bench/BENCH_$(git rev-parse HEAD).json
//	git rm bench/BENCH_<old-sha>.json && git add bench/BENCH_$(git rev-parse HEAD).json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
)

// Result and Report mirror cmd/benchjson's JSON document (the two
// commands stay decoupled; the JSON is the contract).
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type Report struct {
	SHA     string   `json:"sha,omitempty"`
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// gate compares current against baseline and returns one human-readable
// line per violation (empty means the gate is green). match selects which
// benchmarks are gated; threshold is the allowed ns/op regression in
// percent, enforced only when the CPU models match.
func gate(baseline, current Report, match *regexp.Regexp, threshold float64) []string {
	cur := make(map[string]Result, len(current.Results))
	for _, r := range current.Results {
		cur[r.Name] = r
	}
	sameCPU := baseline.CPU != "" && baseline.CPU == current.CPU
	var violations []string
	for _, base := range baseline.Results {
		if !match.MatchString(base.Name) {
			continue
		}
		now, ok := cur[base.Name]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("%s: present in baseline but missing from current run (delete requires re-blessing the baseline)", base.Name))
			continue
		}
		if ba, bok := base.Metrics["allocs/op"]; bok {
			if na, nok := now.Metrics["allocs/op"]; nok && na > ba {
				violations = append(violations,
					fmt.Sprintf("%s: allocs/op regressed %.0f -> %.0f (any increase fails)", base.Name, ba, na))
			}
		}
		if !sameCPU {
			continue // ns/op across different CPU models is not comparable
		}
		if bt, bok := base.Metrics["ns/op"]; bok && bt > 0 {
			if nt, nok := now.Metrics["ns/op"]; nok && nt > bt*(1+threshold/100) {
				violations = append(violations,
					fmt.Sprintf("%s: ns/op regressed %.1f -> %.1f (+%.1f%%, limit %.0f%%)",
						base.Name, bt, nt, (nt/bt-1)*100, threshold))
			}
		}
	}
	return violations
}

// findBaseline resolves path to a report file: either the file itself or
// the single BENCH_*.json inside the directory.
func findBaseline(path string) (string, error) {
	info, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	if !info.IsDir() {
		return path, nil
	}
	matches, err := filepath.Glob(filepath.Join(path, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	if len(matches) != 1 {
		return "", fmt.Errorf("%s: want exactly one BENCH_*.json baseline, found %d", path, len(matches))
	}
	return matches[0], nil
}

func load(path string) (Report, error) {
	var rep Report
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	if len(rep.Results) == 0 {
		return rep, fmt.Errorf("%s: no benchmark results", path)
	}
	return rep, nil
}

func main() {
	baselinePath := flag.String("baseline", "bench", "blessed baseline report (file, or directory with one BENCH_*.json)")
	currentPath := flag.String("current", "", "benchjson report for the current commit")
	matchExpr := flag.String("match", "LiveGet|LivePut|Wire|RESP|RingLookup|WAL", "regexp selecting gated (datapath) benchmarks")
	threshold := flag.Float64("threshold", 15, "allowed ns/op regression in percent (same-CPU runs only)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if *currentPath == "" {
		fail(fmt.Errorf("-current is required"))
	}
	match, err := regexp.Compile(*matchExpr)
	if err != nil {
		fail(err)
	}
	basePath, err := findBaseline(*baselinePath)
	if err != nil {
		fail(err)
	}
	baseline, err := load(basePath)
	if err != nil {
		fail(err)
	}
	current, err := load(*currentPath)
	if err != nil {
		fail(err)
	}
	if baseline.CPU != current.CPU {
		fmt.Printf("benchgate: CPU differs (baseline %q, current %q): gating allocs/op only\n",
			baseline.CPU, current.CPU)
	}
	violations := gate(baseline, current, match, *threshold)
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL against baseline %s (%s):\n", baseline.SHA, basePath)
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		fmt.Fprintln(os.Stderr, "If the regression is intentional, re-bless the baseline (see command doc).")
		os.Exit(1)
	}
	gated := 0
	for _, r := range baseline.Results {
		if match.MatchString(r.Name) {
			gated++
		}
	}
	fmt.Printf("benchgate: OK — %d gated benchmarks within budget of baseline %s\n", gated, baseline.SHA)
}
