// Command benchjson converts `go test -bench` text output (read from
// stdin) into a single JSON document for CI artifacts: the parsed
// benchmark results plus the raw benchfmt text, so downstream tooling
// can either consume the JSON directly or feed the embedded benchfmt
// block straight to benchstat.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchtime=1x ./... | benchjson -sha $GITHUB_SHA > BENCH_$GITHUB_SHA.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name including any -cpu suffix
	// (e.g. "BenchmarkPut-8").
	Name string `json:"name"`
	// Iterations is the measured iteration count.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit to value: "ns/op", "B/op", "allocs/op" and any
	// b.ReportMetric custom units (e.g. "p99-us").
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the document benchjson emits.
type Report struct {
	// SHA labels the commit the run measured (from -sha).
	SHA string `json:"sha,omitempty"`
	// Goos/Goarch/CPU/Pkg are parsed from the benchfmt preamble lines
	// (last value wins when several packages ran).
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Results are the parsed benchmark lines in input order.
	Results []Result `json:"results"`
	// Benchfmt is the raw benchmark-relevant input text, preserved
	// verbatim: feed it to `benchstat old.txt new.txt` style tooling.
	Benchfmt string `json:"benchfmt"`
}

// parseLine parses one "BenchmarkName  N  v unit  v unit..." line;
// ok is false for non-benchmark lines.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

// parse consumes benchfmt text and builds the report.
func parse(lines []string, sha string) Report {
	rep := Report{SHA: sha}
	var keep []string
	for _, line := range lines {
		trimmed := strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(trimmed, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(trimmed, "goos:"))
			keep = append(keep, line)
		case strings.HasPrefix(trimmed, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(trimmed, "goarch:"))
			keep = append(keep, line)
		case strings.HasPrefix(trimmed, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(trimmed, "cpu:"))
			keep = append(keep, line)
		case strings.HasPrefix(trimmed, "pkg:"):
			keep = append(keep, line)
		default:
			if r, ok := parseLine(trimmed); ok {
				rep.Results = append(rep.Results, r)
				keep = append(keep, line)
			}
		}
	}
	rep.Benchfmt = strings.Join(keep, "\n") + "\n"
	return rep
}

func main() {
	sha := flag.String("sha", "", "commit sha to stamp into the report")
	flag.Parse()

	var lines []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading stdin: %v\n", err)
		os.Exit(1)
	}
	rep := parse(lines, *sha)
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines found on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
