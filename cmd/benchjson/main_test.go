package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	cases := []struct {
		in    string
		ok    bool
		name  string
		iters int64
		unit  string
		value float64
	}{
		{"BenchmarkPut-8   \t 1000000 \t 1234 ns/op", true, "BenchmarkPut-8", 1000000, "ns/op", 1234},
		{"BenchmarkClusterMultiGet 100 45298 ns/op 1171 node-p99-us 7680 B/op 118 allocs/op",
			true, "BenchmarkClusterMultiGet", 100, "node-p99-us", 1171},
		{"BenchmarkX 5 0.5 p99-us", true, "BenchmarkX", 5, "p99-us", 0.5},
		{"ok  \tgithub.com/minoskv/minos\t0.5s", false, "", 0, "", 0},
		{"PASS", false, "", 0, "", 0},
		{"goos: linux", false, "", 0, "", 0},
		{"BenchmarkBroken notanumber ns/op", false, "", 0, "", 0},
		{"--- BENCH: BenchmarkFoo", false, "", 0, "", 0},
		{"", false, "", 0, "", 0},
	}
	for _, c := range cases {
		r, ok := parseLine(c.in)
		if ok != c.ok {
			t.Errorf("parseLine(%q) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if r.Name != c.name || r.Iterations != c.iters {
			t.Errorf("parseLine(%q) = %+v", c.in, r)
		}
		if got := r.Metrics[c.unit]; got != c.value {
			t.Errorf("parseLine(%q) metric %s = %v, want %v", c.in, c.unit, got, c.value)
		}
	}
}

func TestParseReport(t *testing.T) {
	input := strings.Split(strings.TrimSpace(`
goos: linux
goarch: amd64
pkg: github.com/minoskv/minos
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFigure3_DefaultWorkload   1   123456789 ns/op   11.5 minos-p99-us
BenchmarkPut-4   2000000   812 ns/op   112 B/op   1 allocs/op
PASS
ok   github.com/minoskv/minos   12.3s
`), "\n")
	rep := parse(input, "abc123")
	if rep.SHA != "abc123" || rep.Goos != "linux" || rep.Goarch != "amd64" {
		t.Fatalf("preamble: %+v", rep)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(rep.Results))
	}
	if rep.Results[1].Metrics["B/op"] != 112 {
		t.Errorf("B/op = %v", rep.Results[1].Metrics["B/op"])
	}
	// The embedded benchfmt block keeps preamble + bench lines (for
	// benchstat) and drops the PASS/ok noise.
	if strings.Contains(rep.Benchfmt, "PASS") || strings.Contains(rep.Benchfmt, "ok ") {
		t.Errorf("benchfmt kept non-bench lines:\n%s", rep.Benchfmt)
	}
	for _, want := range []string{"goos: linux", "BenchmarkPut-4", "pkg: github.com/minoskv/minos"} {
		if !strings.Contains(rep.Benchfmt, want) {
			t.Errorf("benchfmt lost %q:\n%s", want, rep.Benchfmt)
		}
	}
}
